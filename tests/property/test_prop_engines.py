"""Engine-parity properties: the frame machine IS the recursive engine.

The iterative frame machine replaces the recursive backtracker as the
default enumeration engine; its contract is *exact* equivalence — same
matches in the same order, same ``solved`` flag, and byte-identical
work counters (the counters feed the paper's Figure 15/16 analyses, so
"close enough" is not enough). These properties pit the two engines
against each other over random planted cases, across every algorithm
preset and every set-intersection kernel. Pinned corpus seeds from
historical fuzz findings ride along as ``@example``s.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from strategies import corpus_seeds

from repro.core import MatchSession
from repro.core.algorithms import PRESETS
from repro.enumeration.engines import enable_recursive_baseline
from repro.qa import plant_case
from repro.utils.kernels import available_kernels

# The whole point of this suite is the retired baseline — opt in.
enable_recursive_baseline()

SEEDS = st.integers(0, 2**20)

#: One preset per ComputeLC family plus the failing-set and adaptive
#: rows — the combinations that exercise distinct engine code paths.
#: (The nightly fuzz sweep covers the full preset table.)
ENGINE_PRESETS = ["GQL", "CECI", "DP", "QSI", "2PP", "RIfs", "DPfs", "CFL-opt"]

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _pin_corpus_seeds(test):
    """Decorate ``test`` with one ``@example`` per pinned corpus seed."""
    for seed in corpus_seeds():
        test = example(seed=seed)(test)
    return test


def _outcome(case, algorithm, engine, kernel="auto"):
    session = MatchSession(
        case.data, algorithm=algorithm, kernel=kernel, engine=engine
    )
    result = session.match(
        case.query, match_limit=5000, store_limit=5000, validate=False
    )
    counters = result.metrics.counters
    return {
        "num_matches": result.num_matches,
        "embeddings": result.embeddings,
        "solved": result.solved,
        "recursion_calls": counters.get("enumerate.recursion_calls", 0),
        "candidates_scanned": counters.get("enumerate.candidates_scanned", 0),
        "conflicts": counters.get("enumerate.conflicts", 0),
        "failing_set_prunes": counters.get("enumerate.failing_set_prunes", 0),
    }


@_pin_corpus_seeds
@_SETTINGS
@given(seed=SEEDS)
def test_engines_agree_on_every_preset(seed):
    case = plant_case(seed, max_data=24)
    for algorithm in ENGINE_PRESETS:
        recursive = _outcome(case, algorithm, "recursive")
        iterative = _outcome(case, algorithm, "iterative")
        assert iterative == recursive, algorithm


@_pin_corpus_seeds
@_SETTINGS
@given(seed=SEEDS)
def test_engines_agree_on_every_kernel(seed):
    case = plant_case(seed, max_data=24)
    for kernel in available_kernels():
        recursive = _outcome(case, "GQLfs", "recursive", kernel=kernel)
        iterative = _outcome(case, "GQLfs", "iterative", kernel=kernel)
        assert iterative == recursive, kernel


@_SETTINGS
@given(seed=SEEDS)
def test_embedding_sets_match_across_all_presets(seed):
    # Order-free cross-check over the full preset table: any engine, any
    # preset, one embedding multiset.
    case = plant_case(seed, max_data=20)
    reference = None
    for algorithm in PRESETS:
        counts = {
            engine: _outcome(case, algorithm, engine)
            for engine in ("recursive", "iterative")
        }
        found = set(counts["iterative"]["embeddings"])
        assert counts["recursive"]["num_matches"] == counts["iterative"]["num_matches"]
        if counts["iterative"]["num_matches"] < 5000:  # uncapped: comparable
            if reference is None:
                reference = found
            else:
                assert found == reference, algorithm

"""Property tests for the extensions: NEC compression and containment."""

from hypothesis import given, settings

from strategies import connected_graphs, query_data_pairs

from repro.applications import containment_search
from repro.baselines import brute_force_matches
from repro.core import verify_embedding
from repro.extensions import (
    compress_query,
    match_compressed,
    neighborhood_equivalence_classes,
)

SETTINGS = settings(max_examples=40, deadline=None)


@given(connected_graphs())
@SETTINGS
def test_classes_partition_vertices(query):
    classes = neighborhood_equivalence_classes(query)
    flattened = sorted(u for members in classes for u in members)
    assert flattened == list(query.vertices())


@given(connected_graphs())
@SETTINGS
def test_class_members_are_twins(query):
    for members in neighborhood_equivalence_classes(query):
        rep = members[0]
        for u in members[1:]:
            assert query.label(u) == query.label(rep)
            if query.has_edge(u, rep):
                assert query.neighbor_set(u) | {u} == query.neighbor_set(
                    rep
                ) | {rep}
            else:
                assert query.neighbor_set(u) == query.neighbor_set(rep)


@given(connected_graphs())
@SETTINGS
def test_expansion_factor_consistent(query):
    c = compress_query(query)
    assert c.compression_ratio >= 1.0
    assert c.expansion_factor >= 1
    if all(len(members) == 1 for members in c.classes):
        assert c.expansion_factor == 1


@given(query_data_pairs())
@SETTINGS
def test_compressed_matching_agrees_with_oracle(pair):
    query, data = pair
    oracle = brute_force_matches(query, data)
    result = match_compressed(
        query, data, match_limit=None, store_limit=len(oracle) + 10
    )
    assert result.num_matches == len(oracle)
    assert set(result.embeddings) == set(oracle)
    for embedding in result.embeddings:
        assert verify_embedding(query, data, embedding)


@given(query_data_pairs())
@SETTINGS
def test_containment_agrees_with_oracle(pair):
    query, data = pair
    result = containment_search(query, [data])
    expected = [0] if brute_force_matches(query, data) else []
    assert result.containing == expected

"""Property tests: failing-sets pruning never changes results, only cost."""

from hypothesis import given, settings

from strategies import query_data_pairs

from repro.enumeration import BacktrackingEngine, IntersectionLC
from repro.filtering import AuxiliaryStructure, GraphQLFilter
from repro.ordering import GraphQLOrdering, RIOrdering, sample_orders

SETTINGS = settings(max_examples=40, deadline=None)


def run_both(query, data, order):
    candidates = GraphQLFilter().run(query, data)
    auxiliary = AuxiliaryStructure.build(query, data, candidates, scope="all")
    outcomes = []
    for fs in (False, True):
        engine = BacktrackingEngine(IntersectionLC(), use_failing_sets=fs)
        outcomes.append(
            engine.run(
                query,
                data,
                candidates,
                auxiliary,
                order,
                match_limit=None,
                store_limit=1_000_000,
            )
        )
    return outcomes


@given(query_data_pairs())
@SETTINGS
def test_identical_results_on_algorithm_orders(pair):
    query, data = pair
    candidates = GraphQLFilter().run(query, data)
    for ordering in (GraphQLOrdering(), RIOrdering()):
        order = ordering.order(query, data, candidates)
        without, with_fs = run_both(query, data, order)
        assert without.num_matches == with_fs.num_matches
        assert set(without.embeddings) == set(with_fs.embeddings)


@given(query_data_pairs())
@SETTINGS
def test_identical_results_on_random_orders(pair):
    """Soundness must hold for *every* matching order, not just good ones."""
    query, data = pair
    for order in sample_orders(query, 3, seed=hash(query) & 0xFFFF):
        without, with_fs = run_both(query, data, order)
        assert without.num_matches == with_fs.num_matches
        assert set(without.embeddings) == set(with_fs.embeddings)


@given(query_data_pairs())
@SETTINGS
def test_never_more_recursion_calls(pair):
    """Failing sets only skip subtrees; they can never add work."""
    query, data = pair
    candidates = GraphQLFilter().run(query, data)
    order = GraphQLOrdering().order(query, data, candidates)
    without, with_fs = run_both(query, data, order)
    assert with_fs.stats.recursion_calls <= without.stats.recursion_calls

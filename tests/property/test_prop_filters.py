"""Property tests: candidate-set completeness (Definition 2.2) and monotonicity.

The load-bearing invariant of the whole study: *every* filter must keep
every data vertex that participates in any match. A filter that violates
this silently loses answers.
"""

from hypothesis import given, settings

from strategies import query_data_pairs

from repro.baselines import brute_force_matches
from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    NLFFilter,
    SteadyFilter,
)

ALL_FILTERS = [
    LDFFilter(),
    NLFFilter(),
    GraphQLFilter(),
    GraphQLFilter(refinement_rounds=3),
    CFLFilter(),
    CECIFilter(),
    DPisoFilter(),
    DPisoFilter(refinement_phases=1),
    SteadyFilter(),
]

SETTINGS = settings(max_examples=60, deadline=None)


@given(query_data_pairs())
@SETTINGS
def test_completeness(pair):
    query, data = pair
    oracle = brute_force_matches(query, data)
    for filt in ALL_FILTERS:
        candidates = filt.run(query, data)
        for embedding in oracle:
            for u, v in enumerate(embedding):
                assert candidates.contains(u, v), (filt.name, u, v)


@given(query_data_pairs())
@SETTINGS
def test_refined_filters_subset_of_ldf(pair):
    query, data = pair
    ldf = LDFFilter().run(query, data)
    for filt in ALL_FILTERS[1:]:
        refined = filt.run(query, data)
        for u in query.vertices():
            assert set(refined[u]) <= set(ldf[u]), filt.name


@given(query_data_pairs())
@SETTINGS
def test_steady_state_is_strongest_rule31_filter(pair):
    """STEADY is the Rule 3.1 fixpoint: no Rule 3.1-based filter can be
    smaller (GraphQL can be, via its stronger Observation 3.2 rule)."""
    query, data = pair
    steady = SteadyFilter().run(query, data)
    for filt in [CFLFilter(), CECIFilter(), DPisoFilter()]:
        refined = filt.run(query, data)
        for u in query.vertices():
            # NLF is orthogonal to Rule 3.1, so compare only on vertices
            # that pass NLF (all three filters apply NLF).
            assert set(steady[u]) >= (
                set(steady[u]) & set(refined[u])
            )  # sanity
            # Completeness-side check: steady keeps all match images too
            # (covered by test_completeness); here check the fixpoint
            # property — re-running steady on its own output changes nothing.
    again = SteadyFilter().run(query, data)
    assert again.as_dict() == steady.as_dict()


@given(query_data_pairs())
@SETTINGS
def test_candidates_always_pass_ldf(pair):
    query, data = pair
    for filt in ALL_FILTERS:
        candidates = filt.run(query, data)
        for u in query.vertices():
            for v in candidates[u]:
                assert data.label(v) == query.label(u)
                assert data.degree(v) >= query.degree(u)

"""Property tests for the Glasgow constraint-programming solver."""

from hypothesis import given, settings

from strategies import query_data_pairs

from repro.baselines import brute_force_matches
from repro.core import verify_embedding
from repro.glasgow import GlasgowSolver, glasgow_match

SETTINGS = settings(max_examples=40, deadline=None)


@given(query_data_pairs())
@SETTINGS
def test_glasgow_agrees_with_oracle(pair):
    query, data = pair
    oracle = brute_force_matches(query, data)
    result = glasgow_match(
        query, data, match_limit=None, store_limit=len(oracle) + 10
    )
    assert result.num_matches == len(oracle)
    assert set(result.embeddings) == set(oracle)


@given(query_data_pairs())
@SETTINGS
def test_initial_domains_complete(pair):
    """Every match image must survive Glasgow's degree-sequence domains."""
    query, data = pair
    solver = GlasgowSolver(query, data)
    domains = solver.initial_domains()
    for embedding in brute_force_matches(query, data):
        for u, v in enumerate(embedding):
            assert domains[u] & (1 << v)


@given(query_data_pairs())
@SETTINGS
def test_glasgow_embeddings_valid(pair):
    query, data = pair
    result = glasgow_match(query, data, match_limit=None)
    for embedding in result.embeddings:
        assert verify_embedding(query, data, embedding)

"""Property tests for the Graph substrate."""

from hypothesis import given, settings

from strategies import connected_graphs, graphs

from repro.graph import dumps_graph, loads_graph
from repro.graph.ops import bfs_tree, two_core


@given(graphs())
def test_degree_sum_equals_twice_edges(g):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(graphs())
def test_neighbor_symmetry(g):
    for u, v in g.edges():
        assert g.has_edge(u, v) and g.has_edge(v, u)
        assert u in g.neighbor_set(v) and v in g.neighbor_set(u)


@given(graphs())
def test_io_roundtrip(g):
    assert loads_graph(dumps_graph(g)) == g


@given(graphs())
def test_label_index_partition(g):
    total = sum(g.label_frequency(l) for l in g.label_set)
    assert total == g.num_vertices


@given(graphs())
def test_nlf_sums_to_degree(g):
    for v in g.vertices():
        assert sum(g.nlf(v).values()) == g.degree(v)


@given(graphs(min_vertices=2))
def test_edge_label_frequency_totals(g):
    pairs = set()
    for u, v in g.edges():
        la, lb = g.label(u), g.label(v)
        pairs.add((min(la, lb), max(la, lb)))
    assert sum(g.edge_label_frequency(a, b) for a, b in pairs) == g.num_edges


@given(graphs())
@settings(max_examples=50)
def test_two_core_every_vertex_has_internal_degree_two(g):
    core = two_core(g)
    for v in core:
        internal = sum(1 for w in g.neighbors(v).tolist() if w in core)
        assert internal >= 2


@given(connected_graphs())
def test_bfs_tree_covers_all_vertices(g):
    tree = bfs_tree(g, 0)
    assert sorted(tree.order) == list(g.vertices())
    assert len(tree.tree_edges) == g.num_vertices - 1
    assert len(tree.tree_edges) + len(tree.non_tree_edges) == g.num_edges


@given(connected_graphs())
def test_bfs_depths_monotone_along_tree_edges(g):
    tree = bfs_tree(g, 0)
    for parent, child in tree.tree_edges:
        assert tree.depth[child] == tree.depth[parent] + 1


@given(graphs(min_vertices=3))
@settings(max_examples=50)
def test_induced_subgraph_preserves_structure(g):
    chosen = list(g.vertices())[: max(1, g.num_vertices // 2)]
    sub, new_to_old = g.induced_subgraph(chosen)
    for a in sub.vertices():
        for b in sub.vertices():
            if a < b:
                assert sub.has_edge(a, b) == g.has_edge(
                    new_to_old[a], new_to_old[b]
                )

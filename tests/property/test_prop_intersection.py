"""Property tests: all intersection kernels compute set intersection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import sorted_int_lists

from repro.utils.intersection import (
    BitmapSetIndex,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
    multi_intersect,
)
from repro.utils.kernels import available_kernels, get_kernel

#: Every registered backend (scalar, numpy, bitset, qfilter, plus any
#: session-registered extras) — each must agree with the merge reference.
BACKENDS = [name for name in available_kernels() if name != "auto"]


@given(sorted_int_lists(), sorted_int_lists())
def test_merge_matches_set_semantics(a, b):
    assert intersect_merge(a, b) == sorted(set(a) & set(b))


@given(sorted_int_lists(), sorted_int_lists())
def test_galloping_matches_set_semantics(a, b):
    assert intersect_galloping(a, b) == sorted(set(a) & set(b))


@given(sorted_int_lists(), sorted_int_lists())
def test_hybrid_matches_set_semantics(a, b):
    assert intersect_hybrid(a, b) == sorted(set(a) & set(b))


@given(sorted_int_lists(), sorted_int_lists())
def test_bitmap_matches_set_semantics(a, b):
    assert BitmapSetIndex().intersect(a, b) == sorted(set(a) & set(b))


@given(st.lists(sorted_int_lists(max_value=60, max_size=20), min_size=1, max_size=5))
def test_multi_intersect_matches_set_semantics(lists):
    expected = set(lists[0])
    for other in lists[1:]:
        expected &= set(other)
    assert multi_intersect(lists) == sorted(expected)


@given(st.lists(sorted_int_lists(max_value=60, max_size=20), min_size=1, max_size=5))
def test_bitmap_multi_agrees_with_hybrid_multi(lists):
    assert BitmapSetIndex().multi_intersect(lists) == multi_intersect(lists)


@given(sorted_int_lists())
def test_intersection_idempotent(a):
    assert intersect_hybrid(a, a) == a


@given(sorted_int_lists(), sorted_int_lists())
def test_intersection_commutative(a, b):
    assert intersect_hybrid(a, b) == intersect_hybrid(b, a)


@given(sorted_int_lists(max_value=500))
@settings(max_examples=50)
def test_bitmap_roundtrip(a):
    idx = BitmapSetIndex()
    assert idx.decode(idx.encode(a)) == a


# ----------------------------------------------------------------------
# Kernel backends: every registered backend agrees with intersect_merge
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKENDS)
@given(a=sorted_int_lists(), b=sorted_int_lists())
def test_backend_pairwise_agrees_with_merge(name, a, b):
    kernel = get_kernel(name)
    got = [int(v) for v in kernel.intersect(a, b)]
    assert got == intersect_merge(a, b)


@pytest.mark.parametrize("name", BACKENDS)
@given(
    lists=st.lists(
        sorted_int_lists(max_value=60, max_size=20), min_size=1, max_size=5
    )
)
def test_backend_multiway_agrees_with_merge(name, lists):
    kernel = get_kernel(name)
    expected = list(lists[0])
    for other in lists[1:]:
        expected = intersect_merge(expected, other)
    assert [int(v) for v in kernel.multi_intersect(lists)] == expected


@pytest.mark.parametrize("name", BACKENDS)
@given(a=sorted_int_lists())
@settings(max_examples=25)
def test_backend_idempotent(name, a):
    kernel = get_kernel(name)
    assert [int(v) for v in kernel.intersect(a, a)] == a

"""Property tests: every algorithm agrees with the brute-force oracle.

This is the end-to-end correctness property: any (query, data) pair, any
preset, any optimization flag — identical embedding sets.
"""

from hypothesis import given, settings

from strategies import query_data_pairs

from repro import match
from repro.baselines import brute_force_matches, vf2_matches
from repro.glasgow import glasgow_match

SETTINGS = settings(max_examples=40, deadline=None)

#: One representative per framework corner: direct/preprocessing,
#: every LC algorithm, static/adaptive, with/without failing sets.
REPRESENTATIVES = [
    "QSI",      # direct enumeration, Algorithm 2
    "2PP",      # Algorithm 2 + extra rules
    "GQL",      # Algorithm 3
    "CFL",      # Algorithm 4, tree auxiliary
    "CECI",     # Algorithm 5
    "DP",       # adaptive ordering
    "GQLfs",    # failing sets
    "DPfs",     # adaptive + failing sets
    "recommended",
]


@given(query_data_pairs())
@SETTINGS
def test_presets_agree_with_brute_force(pair):
    query, data = pair
    oracle = brute_force_matches(query, data)
    for name in REPRESENTATIVES:
        result = match(
            query,
            data,
            algorithm=name,
            match_limit=None,
            store_limit=len(oracle) + 1,
        )
        assert result.num_matches == len(oracle), name
        assert set(result.embeddings) == set(oracle), name


@given(query_data_pairs())
@SETTINGS
def test_glasgow_agrees_with_brute_force(pair):
    query, data = pair
    oracle = brute_force_matches(query, data)
    result = glasgow_match(
        query, data, match_limit=None, store_limit=len(oracle) + 1
    )
    assert set(result.embeddings) == set(oracle)


@given(query_data_pairs())
@SETTINGS
def test_vf2_agrees_with_brute_force(pair):
    query, data = pair
    assert vf2_matches(query, data) == brute_force_matches(query, data)


@given(query_data_pairs())
@SETTINGS
def test_embeddings_are_valid_monomorphisms(pair):
    query, data = pair
    result = match(query, data, algorithm="recommended", match_limit=None)
    for emb in result.embeddings:
        assert len(set(emb)) == len(emb)  # injective
        for u in query.vertices():
            assert data.label(emb[u]) == query.label(u)
        for a, b in query.edges():
            assert data.has_edge(emb[a], emb[b])

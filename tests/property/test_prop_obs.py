"""Property tests for the observability invariants (repro.obs).

The counters are only worth reporting if they obey the arithmetic the
paper's figures assume, on *any* input:

* every counter is non-negative;
* ``recursion_calls >= num_matches`` on solved queries (each match is
  found at a leaf of the search tree, and every leaf is a call);
* ``candidates_scanned >= conflicts`` (a conflict is one scanned
  candidate rejected by injectivity);
* filter-stage totals are monotone non-increasing (after generation,
  every rule only prunes — the completeness counterpart the filters
  already property-test);
* counter merge is associative and commutative, so a parallel runner may
  fold worker results in any order without changing a RunSummary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import query_data_pairs

from repro.core import match
from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    NLFFilter,
)
from repro.filtering.steady import SteadyFilter
from repro.obs import Metrics, collecting

ALGORITHMS = ["GQL", "CFL", "CECI", "DP", "RIfs"]

FILTERS = [
    LDFFilter,
    NLFFilter,
    GraphQLFilter,
    CFLFilter,
    CECIFilter,
    DPisoFilter,
    SteadyFilter,
]


@settings(deadline=None, max_examples=30)
@given(query_data_pairs(), st.sampled_from(ALGORITHMS))
def test_counters_nonnegative_and_consistent(pair, algorithm):
    query, data = pair
    result = match(query, data, algorithm=algorithm, validate=False)
    counters = result.metrics.counters
    assert all(v >= 0 for v in counters.values()), counters
    if result.solved:
        assert counters["enumerate.recursion_calls"] >= result.num_matches
    assert (
        counters["enumerate.candidates_scanned"]
        >= counters["enumerate.conflicts"]
    )
    assert all(t >= 0.0 for t in result.metrics.phase_seconds.values())


@settings(deadline=None, max_examples=30)
@given(query_data_pairs(), st.sampled_from(FILTERS))
def test_filter_stage_totals_monotone_nonincreasing(pair, filter_cls):
    query, data = pair
    metrics = Metrics()
    with collecting(metrics):
        candidates = filter_cls().run(query, data)
    totals = [stage.candidates for stage in metrics.filter_stages]
    assert totals, f"{filter_cls.__name__} recorded no stages"
    assert all(t >= 0 for t in totals)
    assert all(a >= b for a, b in zip(totals, totals[1:])), totals
    # the last recorded stage is the filter's actual output
    assert totals[-1] == candidates.total_size


counter_dicts = st.dictionaries(
    st.sampled_from(
        [
            "filter.candidates_final",
            "filter.refinement_iterations",
            "order.cost_evaluations",
            "enumerate.recursion_calls",
            "enumerate.conflicts",
        ]
    ),
    st.integers(0, 10_000),
    max_size=5,
)

# Dyadic rationals (k/1024) sum exactly in binary floating point, so the
# associativity assertion below is exact. Counters are ints — for them
# associativity holds unconditionally, which is what the parallel runner
# relies on; timings are only ever reported, never compared bit-for-bit.
phase_dicts = st.dictionaries(
    st.sampled_from(["filter", "order", "enumerate"]),
    st.integers(0, 1024).map(lambda k: k / 1024.0),
    max_size=3,
)

metrics_objects = st.builds(
    Metrics, counters=counter_dicts, phase_seconds=phase_dicts
)


@settings(deadline=None)
@given(metrics_objects, metrics_objects)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@settings(deadline=None)
@given(metrics_objects, metrics_objects, metrics_objects)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(deadline=None)
@given(metrics_objects)
def test_merge_identity(a):
    merged = a.merge(Metrics())
    assert merged.counters == a.counters
    assert merged.phase_seconds == a.phase_seconds


@settings(deadline=None, max_examples=20)
@given(query_data_pairs())
def test_metrics_survive_dict_round_trip(pair):
    query, data = pair
    result = match(query, data, algorithm="CFL", validate=False)
    restored = Metrics.from_dict(result.metrics.to_dict())
    assert restored == result.metrics

"""Property tests: every ordering yields a valid connected matching order."""

from hypothesis import given, settings

from strategies import query_data_pairs

from repro.filtering import GraphQLFilter
from repro.ordering import (
    CECIOrdering,
    CFLOrdering,
    DPisoOrdering,
    GraphQLOrdering,
    QuickSIOrdering,
    RIOrdering,
    VF2ppOrdering,
    validate_order,
)

ALL_ORDERINGS = [
    QuickSIOrdering(),
    GraphQLOrdering(),
    CFLOrdering(),
    CECIOrdering(),
    DPisoOrdering(),
    RIOrdering(),
    VF2ppOrdering(),
]

SETTINGS = settings(max_examples=60, deadline=None)


@given(query_data_pairs())
@SETTINGS
def test_orders_are_valid(pair):
    query, data = pair
    candidates = GraphQLFilter().run(query, data)
    for ordering in ALL_ORDERINGS:
        phi = ordering.order(query, data, candidates)
        validate_order(query, phi)


@given(query_data_pairs())
@SETTINGS
def test_orders_deterministic(pair):
    query, data = pair
    candidates = GraphQLFilter().run(query, data)
    for ordering in ALL_ORDERINGS:
        assert ordering.order(query, data, candidates) == ordering.order(
            query, data, candidates
        ), ordering.name


@given(query_data_pairs())
@SETTINGS
def test_dpiso_adaptive_state_weights_nonnegative(pair):
    query, data = pair
    candidates = GraphQLFilter().run(query, data)
    state = DPisoOrdering().adaptive_state(query, data, candidates)
    for table in state.weights:
        for weight in table.values():
            assert weight >= 0.0

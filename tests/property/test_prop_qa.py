"""Property tests for the QA harness, seeded with pinned regressions.

Two layers of defense:

* Hypothesis properties over random generator seeds assert the planted
  ground truth (the embedding is genuine and every algorithm finds it)
  and that the differential matrix stays clean. Every pinned corpus seed
  rides along as an ``@example``, so historical fuzz findings re-run on
  every test invocation before Hypothesis explores new ground.
* The corpus replay suite loads each JSON repro file under
  ``tests/corpus/`` (one per divergence class the fuzzer can emit) and
  asserts the recorded divergence no longer reproduces.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from strategies import corpus_records, corpus_seeds

from repro.baselines import vf2_matches
from repro.core import count_matches, verify_embedding
from repro.graph import query_fingerprint
from repro.qa import (
    DIVERGENCE_KINDS,
    apply_transform,
    plant_case,
    renumber_vertices,
    replay_repro,
    run_case,
)

SEEDS = st.integers(0, 2**20)

#: A reduced-but-representative differential profile for property runs:
#: one preset per ComputeLC family plus failing sets, full kernels/
#: session/oracle/metamorphic coverage. The fuzz CLI runs the full table.
QUICK_PROFILE = dict(
    presets=["GQL", "CECI", "DP", "QSI", "RIfs", "CFL-opt", "recommended"],
)

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _pin_corpus_seeds(test):
    """Decorate ``test`` with one ``@example`` per pinned corpus seed."""
    for seed in corpus_seeds():
        test = example(seed=seed)(test)
    return test


@_pin_corpus_seeds
@_SETTINGS
@given(seed=SEEDS)
def test_planted_embedding_is_ground_truth(seed):
    case = plant_case(seed, max_data=24)
    assert verify_embedding(case.query, case.data, case.planted)
    assert case.planted in vf2_matches(case.query, case.data)


@_pin_corpus_seeds
@_SETTINGS
@given(seed=SEEDS)
def test_differential_matrix_clean(seed):
    case = plant_case(seed, max_data=24)
    divergences = run_case(case, **QUICK_PROFILE)
    assert divergences == [], [d.detail for d in divergences]


@_SETTINGS
@given(seed=SEEDS)
def test_counts_invariant_under_transforms(seed):
    case = plant_case(seed, max_data=20)
    base = count_matches(case.query, case.data, algorithm="GQL")
    for transform in ("relabel", "renumber", "edge_shuffle"):
        q2, d2, _ = apply_transform(transform, case.query, case.data, seed + 1)
        assert count_matches(q2, d2, algorithm="GQL") == base, transform


@_SETTINGS
@given(seed=SEEDS)
def test_query_fingerprint_invariant_under_renumber(seed):
    case = plant_case(seed, max_data=16)
    renumbered, _ = renumber_vertices(case.query, seed + 7)
    assert query_fingerprint(renumbered) == query_fingerprint(case.query)


# ----------------------------------------------------------------------
# Corpus replay: every pinned historical divergence must stay fixed.
# ----------------------------------------------------------------------

_CORPUS = corpus_records()


def test_corpus_covers_every_divergence_class():
    pinned_kinds = {record["kind"] for _, record in _CORPUS}
    assert pinned_kinds == set(DIVERGENCE_KINDS), (
        "tests/corpus must pin one repro per divergence class; missing: "
        f"{set(DIVERGENCE_KINDS) - pinned_kinds}"
    )


@pytest.mark.parametrize(
    "name,record", _CORPUS, ids=[name for name, _ in _CORPUS]
)
def test_corpus_repro_stays_fixed(name, record):
    assert not replay_repro(record), (
        f"{name}: the divergence recorded in this corpus file reproduces "
        f"again — regression in {record['kind']} "
        f"({record.get('detail', '')})"
    )

"""Property tests: session caching is invisible except in its counters.

Two families of invariants:

* **Fingerprint** — invariant under any permutation of vertex ids,
  and two graphs with different fingerprints are never isomorphic
  renumberings of each other (soundness of the plan-cache key).
* **Session accounting** — for any workload, every query is exactly one
  plan hit or one plan miss; misses equal the number of distinct
  fingerprints (unbounded cache); and every result equals a fresh
  one-shot ``match()``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import connected_graphs, graphs, query_data_pairs

from repro import MatchSession, match, query_fingerprint
from repro.graph import Graph

SETTINGS = settings(max_examples=40, deadline=None)


def _permuted(graph: Graph, perm):
    labels = [0] * graph.num_vertices
    for v in range(graph.num_vertices):
        labels[perm[v]] = graph.label(v)
    edges = [(perm[u], perm[v]) for u, v in graph.edges()]
    return Graph(labels=labels, edges=edges)


@st.composite
def graph_and_permutation(draw):
    graph = draw(connected_graphs(min_vertices=3, max_vertices=7))
    perm = draw(st.permutations(range(graph.num_vertices)))
    return graph, list(perm)


@given(graph_and_permutation())
@SETTINGS
def test_fingerprint_invariant_under_relabeling(case):
    graph, perm = case
    assert query_fingerprint(_permuted(graph, perm)) == query_fingerprint(graph)


@given(graphs(min_vertices=1, max_vertices=8, max_labels=3))
@SETTINGS
def test_fingerprint_prefix_counts(graph):
    fingerprint = query_fingerprint(graph)
    assert fingerprint.startswith(
        f"q{graph.num_vertices}e{graph.num_edges}-"
    )


@st.composite
def session_workloads(draw):
    """A data graph plus a workload mixing repeats and renumberings."""
    query, data = draw(query_data_pairs(max_query_vertices=5))
    extra = draw(
        st.lists(
            connected_graphs(min_vertices=3, max_vertices=5, max_labels=2),
            max_size=2,
        )
    )
    pool = [query] + extra
    picks = draw(
        st.lists(st.integers(0, len(pool) - 1), min_size=1, max_size=8)
    )
    workload = []
    for index in picks:
        graph = pool[index]
        if draw(st.booleans()):
            perm = draw(st.permutations(range(graph.num_vertices)))
            graph = _permuted(graph, list(perm))
        workload.append(graph)
    return data, workload


@given(session_workloads())
@SETTINGS
def test_session_cache_accounting(case):
    data, workload = case
    session = MatchSession(
        data, algorithm="GQLfs", plan_cache_size=None, prep_cache_size=None
    )
    results = session.match_many(workload, validate=False)

    # Per-query: exactly one of hit/miss, for both caches.
    for result in results:
        counters = result.metrics.counters
        assert counters["plan.cache_hit"] + counters["plan.cache_miss"] == 1
        assert counters["plan.prep_hit"] + counters["plan.prep_miss"] == 1

    info = session.cache_info()
    total = len(workload)
    assert info["plan"]["hits"] + info["plan"]["misses"] == total
    assert info["prep"]["hits"] + info["prep"]["misses"] == total

    # Unbounded caches: misses are exactly the distinct key populations.
    distinct_fingerprints = len({query_fingerprint(q) for q in workload})
    distinct_graphs = len(set(workload))
    assert info["plan"]["misses"] == distinct_fingerprints
    assert info["plan"]["size"] == distinct_fingerprints
    assert info["prep"]["misses"] == distinct_graphs
    assert info["prep"]["size"] == distinct_graphs

    # Session-wide counters agree with cache introspection.
    counters = session.metrics.counters
    assert counters["session.queries"] == total
    assert counters["session.plan_cache_hits"] == info["plan"]["hits"]
    assert counters["session.prep_cache_hits"] == info["prep"]["hits"]


@given(session_workloads())
@SETTINGS
def test_session_results_equal_one_shot(case):
    data, workload = case
    session = MatchSession(data, algorithm="GQLfs")
    results = session.match_many(workload, validate=False)
    for query, result in zip(workload, results):
        one_shot = match(query, data, algorithm="GQLfs", validate=False)
        assert result.num_matches == one_shot.num_matches
        assert sorted(map(tuple, (sorted(m.items()) for m in result.mappings))) \
            == sorted(map(tuple, (sorted(m.items()) for m in one_shot.mappings)))

"""Backend-parity properties for the storage layer.

The storage contract is byte identity: any graph round-tripped through
the ``.rgf`` binary format or a shared-memory segment must come back
with identical CSR arrays, the same store fingerprint, and — run through
the matcher — the exact embedding list the in-memory arrays produce.
Pinned corpus seeds from historical fuzz findings ride along.
"""

import numpy as np
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from strategies import connected_graphs, corpus_seeds, graphs

from repro.core.api import match
from repro.graph.store import (
    InMemoryStore,
    MmapStore,
    SharedMemoryStore,
    write_rgf,
)
from repro.qa import plant_case

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SEEDS = st.integers(0, 2**20)


def _pin_corpus_seeds(test):
    for seed in corpus_seeds():
        test = example(seed=seed)(test)
    return test


def _assert_arrays_identical(store, graph):
    assert np.array_equal(store.labels, graph.labels)
    assert np.array_equal(store.neighbors, graph._neighbors)
    assert store.graph() == graph
    assert store.fingerprint() == graph.store.fingerprint()


@_SETTINGS
@given(graph=graphs(min_vertices=0, max_vertices=12))
def test_rgf_round_trip_is_byte_identical(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("rgf") / "g.rgf"
    write_rgf(graph, path)
    with MmapStore(path, validate=True) as store:
        _assert_arrays_identical(store, graph)


@_SETTINGS
@given(graph=graphs(min_vertices=1, max_vertices=12))
def test_shared_memory_round_trip_is_byte_identical(graph):
    owner = SharedMemoryStore.publish(graph)
    try:
        attached = SharedMemoryStore.attach(owner.handle)
        try:
            _assert_arrays_identical(attached, graph)
        finally:
            attached.close()
    finally:
        owner.close()


@_SETTINGS
@given(graph=connected_graphs())
def test_materialize_round_trip(graph):
    copy = InMemoryStore.materialize(graph.store)
    _assert_arrays_identical(copy, graph)


@_pin_corpus_seeds
@_SETTINGS
@given(seed=SEEDS)
def test_match_results_identical_across_backends(seed, tmp_path_factory):
    case = plant_case(seed, max_data=24)
    baseline = match(case.query, case.data, algorithm="GQL",
                     match_limit=5000, store_limit=5000)

    path = tmp_path_factory.mktemp("parity") / "data.rgf"
    write_rgf(case.data, path)
    with MmapStore(path, validate=True) as store:
        from_mmap = match(case.query, store.graph(), algorithm="GQL",
                          match_limit=5000, store_limit=5000)

    owner = SharedMemoryStore.publish(case.data)
    try:
        from_shm = match(case.query, owner.graph(), algorithm="GQL",
                         match_limit=5000, store_limit=5000)
    finally:
        owner.close()

    assert from_mmap.num_matches == baseline.num_matches
    assert from_shm.num_matches == baseline.num_matches
    assert from_mmap.embeddings == baseline.embeddings
    assert from_shm.embeddings == baseline.embeddings

"""Unit tests for the auxiliary structure A (candidate adjacency)."""

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.errors import ConfigurationError
from repro.filtering import AuxiliaryStructure, CandidateSets, CFLFilter, GraphQLFilter
from repro.graph.ops import bfs_tree


@pytest.fixture(scope="module")
def refined():
    return GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)


class TestBuildScopes:
    def test_none_scope_empty(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="none")
        assert aux.num_entries == 0
        assert list(aux.pairs()) == []

    def test_all_scope_covers_every_edge_both_directions(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        for u, v in PAPER_QUERY.edges():
            assert aux.has_pair(u, v)
            assert aux.has_pair(v, u)

    def test_tree_scope_covers_only_tree_edges(self, refined):
        tree = bfs_tree(PAPER_QUERY, 0)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, refined, scope="tree", tree=tree
        )
        assert aux.has_pair(0, 1) and aux.has_pair(1, 0)
        assert aux.has_pair(1, 3)
        # Non-tree edge (1, 2) is not materialized.
        assert not aux.has_pair(1, 2)

    def test_tree_scope_requires_tree(self, refined):
        with pytest.raises(ConfigurationError, match="requires a BFSTree"):
            AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="tree")

    def test_unknown_scope(self, refined):
        with pytest.raises(ConfigurationError, match="unknown"):
            AuxiliaryStructure.build(
                PAPER_QUERY, PAPER_DATA, refined, scope="bogus"  # type: ignore
            )


class TestLookups:
    def test_paper_example_adjacency(self):
        # A^{u1}_{u3}(v4) = {v10, v12} (end of Example 3.2).
        cand = CFLFilter().run(PAPER_QUERY, PAPER_DATA)
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, cand, scope="all")
        assert aux.neighbors(1, 3, 4).tolist() == [10, 12]

    def test_definition(self, refined):
        # A_{u'}^{u}(v) = N(v) ∩ C(u') for every materialized pair.
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        for (u_from, u_to) in aux.pairs():
            for v in refined[u_from]:
                expected = sorted(
                    set(PAPER_DATA.neighbors(v).tolist())
                    & set(refined[u_to])
                )
                assert aux.neighbors(u_from, u_to, v).tolist() == expected

    def test_unknown_candidate_returns_empty(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        assert aux.neighbors(0, 1, 999).tolist() == []

    def test_unmaterialized_pair_raises(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        with pytest.raises(KeyError):
            aux.neighbors(0, 3, 0)  # (u0, u3) is not a query edge.

    def test_lists_sorted(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        for pair in aux.pairs():
            for v in refined[pair[0]]:
                lst = aux.neighbors(pair[0], pair[1], v).tolist()
                assert lst == sorted(lst)


class TestMetrics:
    def test_memory_accounting(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        assert aux.memory_bytes == 8 * aux.num_entries
        assert aux.num_entries > 0

    def test_repr(self, refined):
        aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, refined, scope="all")
        assert "scope='all'" in repr(aux)

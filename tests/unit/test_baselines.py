"""Unit tests for the oracle matchers."""

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.baselines import brute_force_matches, vf2_matches
from repro.baselines.vf2 import iter_vf2_matches
from repro.graph import Graph


class TestBruteForce:
    def test_paper_example(self):
        assert brute_force_matches(PAPER_QUERY, PAPER_DATA) == PAPER_MATCHES

    def test_monomorphism_semantics(self):
        # Query path 0-1-2 inside a triangle: the extra data edge is fine.
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        path = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        assert len(brute_force_matches(path, triangle)) == 6

    def test_injectivity(self):
        # Two query vertices cannot share a data vertex.
        data = Graph(labels=[0, 1], edges=[(0, 1)])
        query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        assert brute_force_matches(query, data) == frozenset()

    def test_labels_respected(self):
        data = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        query = Graph(labels=[0, 0, 1], edges=[(0, 1), (1, 2)])
        assert brute_force_matches(query, data) == frozenset()


class TestVF2:
    def test_paper_example(self):
        assert vf2_matches(PAPER_QUERY, PAPER_DATA) == PAPER_MATCHES

    def test_agrees_with_brute_force_on_triangle_host(self):
        host = Graph(
            labels=[0, 0, 0, 0],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3)],
        )
        query = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        assert vf2_matches(query, host) == brute_force_matches(query, host)

    def test_limit(self):
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        path = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        got = list(iter_vf2_matches(path, triangle, limit=2))
        assert len(got) == 2

    def test_iterator_is_lazy(self):
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        path = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        it = iter_vf2_matches(path, triangle)
        first = next(it)
        assert len(first) == 3

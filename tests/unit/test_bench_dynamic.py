"""Unit tests for the dynamic benchmark's BENCH_dynamic.json contract."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_DYNAMIC_SCHEMA_VERSION,
    MIN_DYNAMIC_SPEEDUP,
    TraceSchemaError,
    validate_bench_dynamic,
)

_REPO = Path(__file__).resolve().parents[2]
_BENCH_PATH = _REPO / "benchmarks" / "bench_dynamic.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_dynamic", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Tiny scale: the schema and the correctness attestations are under
    # test here, not the speedup headline (though even at this scale the
    # per-batch rebuild loses by far more than the floor).
    return bench_module.run_dynamic_benchmark(
        vertices=300,
        degree=6.0,
        labels=3,
        query_size=4,
        churn_fraction=0.02,
        batch_size=2,
        match_limit=5_000,
    )


class TestPayload:
    def test_validates_and_is_json_serializable(self, payload):
        validate_bench_dynamic(payload)
        json.dumps(payload)

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_DYNAMIC_SCHEMA_VERSION
        assert payload["benchmark"] == "dynamic-mutation"

    def test_attestations_hold(self, payload):
        assert payload["states_identical"] is True
        assert payload["final_match_identical"] is True

    def test_speedup_clears_the_floor_and_is_consistent(self, payload):
        assert payload["speedup_incremental_vs_scratch"] >= MIN_DYNAMIC_SPEEDUP
        assert payload["speedup_incremental_vs_scratch"] == pytest.approx(
            payload["timings"]["scratch_seconds"]
            / payload["timings"]["incremental_seconds"]
        )

    def test_no_leaks(self, payload):
        assert payload["shm_segments_leaked"] == 0
        assert payload["tempfiles_leaked"] == 0

    def test_workload_accounting(self, payload):
        workload = payload["workload"]
        assert workload["ops_total"] >= workload["num_batches"]
        assert 0 < workload["churn_fraction"] <= 1


class TestCheckedInPayloads:
    @pytest.mark.parametrize(
        "path",
        ["BENCH_dynamic.json", "benchmarks/results/BENCH_dynamic.json"],
    )
    def test_committed_payload_still_validates(self, path):
        committed = json.loads((_REPO / path).read_text())
        validate_bench_dynamic(committed)


class TestValidatorRejects:
    def test_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_dynamic(bad)

    def test_wrong_benchmark_id(self, payload):
        bad = copy.deepcopy(payload)
        bad["benchmark"] = "something-else"
        with pytest.raises(TraceSchemaError, match="benchmark id"):
            validate_bench_dynamic(bad)

    def test_speedup_below_floor_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["timings"]["scratch_seconds"] = bad["timings"]["incremental_seconds"]
        bad["speedup_incremental_vs_scratch"] = 1.0
        with pytest.raises(TraceSchemaError, match="floor"):
            validate_bench_dynamic(bad)

    def test_inconsistent_speedup_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["speedup_incremental_vs_scratch"] += 1.0
        with pytest.raises(TraceSchemaError, match="must equal"):
            validate_bench_dynamic(bad)

    def test_diverged_states_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["states_identical"] = False
        with pytest.raises(TraceSchemaError, match="states_identical"):
            validate_bench_dynamic(bad)

    def test_diverged_final_match_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["final_match_identical"] = False
        with pytest.raises(TraceSchemaError, match="final_match_identical"):
            validate_bench_dynamic(bad)

    def test_leaks_rejected(self, payload):
        for key in ("shm_segments_leaked", "tempfiles_leaked"):
            bad = copy.deepcopy(payload)
            bad[key] = 2
            with pytest.raises(TraceSchemaError, match=key):
                validate_bench_dynamic(bad)

    def test_missing_timings_rejected(self, payload):
        bad = copy.deepcopy(payload)
        del bad["timings"]["incremental_seconds"]
        with pytest.raises(TraceSchemaError, match="incremental_seconds"):
            validate_bench_dynamic(bad)

"""Unit tests for the engine benchmark's BENCH_engine.json contract."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_ENGINE_SCHEMA_VERSION,
    TraceSchemaError,
    validate_bench_engine,
)

_BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_engine.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_engine", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Tiny scale: the schema and the engine-identity checks are under
    # test here, not the speedup headline.
    return bench_module.run_engine_benchmark(
        vertices=200,
        num_queries=2,
        repeats=1,
        query_size=5,
        match_limit=200,
        degree=8.0,
        labels=2,
    )


class TestPayload:
    def test_validates_and_is_json_serializable(self, payload):
        validate_bench_engine(payload)
        json.dumps(payload)

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_ENGINE_SCHEMA_VERSION
        assert payload["benchmark"] == "engine-comparison"

    def test_covers_both_engines_per_preset(self, payload):
        for entry in payload["presets"]:
            assert set(entry["engines"]) == {"recursive", "iterative"}

    def test_embeddings_identical(self, payload):
        assert all(p["embeddings_identical"] for p in payload["presets"])

    def test_match_totals_agree_across_engines(self, payload):
        for entry in payload["presets"]:
            totals = {s["matches_total"] for s in entry["engines"].values()}
            assert len(totals) == 1

    def test_speedup_is_consistent(self, payload):
        for entry in payload["presets"]:
            assert entry["speedup_iterative_vs_recursive"] == pytest.approx(
                entry["engines"]["recursive"]["seconds_total"]
                / entry["engines"]["iterative"]["seconds_total"]
            )


class TestValidatorRejects:
    def test_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_engine(bad)

    def test_wrong_benchmark_id(self, payload):
        bad = copy.deepcopy(payload)
        bad["benchmark"] = "something-else"
        with pytest.raises(TraceSchemaError, match="benchmark id"):
            validate_bench_engine(bad)

    def test_single_engine_rejected(self, payload):
        bad = copy.deepcopy(payload)
        del bad["presets"][0]["engines"]["recursive"]
        with pytest.raises(TraceSchemaError, match="at least two"):
            validate_bench_engine(bad)

    def test_disagreeing_match_totals_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["presets"][0]["engines"]["iterative"]["matches_total"] += 1
        with pytest.raises(TraceSchemaError, match="disagree"):
            validate_bench_engine(bad)

    def test_nonidentical_embeddings_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["presets"][0]["embeddings_identical"] = False
        with pytest.raises(TraceSchemaError, match="embeddings_identical"):
            validate_bench_engine(bad)

    def test_missing_overall_speedup(self, payload):
        bad = copy.deepcopy(payload)
        del bad["overall_speedup"]
        with pytest.raises(TraceSchemaError, match="overall_speedup"):
            validate_bench_engine(bad)

"""Unit tests for the kernel shoot-out's BENCH_kernels.json contract."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_KERNELS_SCHEMA_VERSION,
    TraceSchemaError,
    validate_bench_kernels,
)

_BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_kernels.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_kernels", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Small arrays: the schema is under test here, not the timings.
    return bench_module.run_backend_shootout(universe=4_000, size=256)


class TestShootoutPayload:
    def test_schema_version_stamped(self, payload):
        assert payload["schema_version"] == BENCH_KERNELS_SCHEMA_VERSION

    def test_resolved_kernel_names_stamped(self, payload):
        assert payload["kernels"] == {
            "scalar": "scalar", "numpy": "numpy", "bitset": "bitset"
        }

    def test_payload_validates(self, payload):
        validate_bench_kernels(payload)

    def test_written_file_round_trips_through_validator(self, payload, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        validate_bench_kernels(json.loads(path.read_text()))

    def test_timings_positive(self, payload):
        assert all(t > 0 for t in payload["seconds_per_call"].values())
        assert payload["speedup_numpy_vs_scalar"] > 0
        assert payload["speedup_bitset_vs_scalar"] > 0


class TestCheckedInArtifact:
    """The repository's committed BENCH_kernels.json matches the schema."""

    @pytest.mark.parametrize(
        "relative",
        ["BENCH_kernels.json", "benchmarks/results/BENCH_kernels.json"],
    )
    def test_artifact_validates(self, relative):
        path = Path(__file__).resolve().parents[2] / relative
        if not path.exists():  # pragma: no cover - fresh clone without runs
            pytest.skip(f"{relative} not generated yet")
        validate_bench_kernels(json.loads(path.read_text()))


class TestValidatorRejections:
    def test_missing_kernels_key(self, payload):
        bad = dict(payload)
        bad.pop("kernels")
        with pytest.raises(TraceSchemaError):
            validate_bench_kernels(bad)

    def test_stale_schema_version(self, payload):
        bad = dict(payload)
        bad["schema_version"] = BENCH_KERNELS_SCHEMA_VERSION - 1
        with pytest.raises(TraceSchemaError):
            validate_bench_kernels(bad)

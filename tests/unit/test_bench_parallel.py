"""Unit tests for the parallel benchmark's BENCH_parallel.json contract."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_PARALLEL_SCHEMA_VERSION,
    MIN_PARALLEL_SPEEDUP,
    TraceSchemaError,
    validate_bench_parallel,
)

_BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_parallel.py"
)


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_parallel", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Small scale, but large enough that the chunked schedule still
    # clears the speedup floor the validator enforces.
    return bench_module.run_parallel_benchmark(
        vertices=1_000,
        num_queries=2,
        repeats=1,
    )


class TestGreedyMakespan:
    def test_single_worker_is_the_sum(self, bench_module):
        assert bench_module.greedy_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_many_workers_bounded_by_longest(self, bench_module):
        times = [5.0, 1.0, 1.0, 1.0]
        assert bench_module.greedy_makespan(times, 4) == 5.0

    def test_balances_across_workers(self, bench_module):
        times = [4.0, 3.0, 3.0, 2.0]
        # Longest-first greedy: {4, 2} and {3, 3}.
        assert bench_module.greedy_makespan(times, 2) == 6.0


class TestPayload:
    def test_validates_and_is_json_serializable(self, payload):
        validate_bench_parallel(payload)
        json.dumps(payload)

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_PARALLEL_SCHEMA_VERSION
        assert payload["benchmark"] == "parallel-enumeration"

    def test_speedup_provenance_is_declared(self, payload):
        assert payload["speedup_source"] in ("measured", "modeled")
        if payload["speedup_source"] == "measured":
            assert payload["host_cpus"] >= 4

    def test_embeddings_identical(self, payload):
        assert payload["embeddings_identical"] is True
        assert all(q["embeddings_identical"] for q in payload["queries"])

    def test_clears_speedup_floor(self, payload):
        assert (
            payload["overall_speedup_4_workers"] >= MIN_PARALLEL_SPEEDUP
        )

    def test_no_shared_memory_leaked(self, payload):
        assert payload["shm_segments_leaked"] == 0

    def test_per_query_chunk_timings_recorded(self, payload):
        for entry in payload["queries"]:
            assert entry["chunk_seconds"]
            assert len(entry["chunk_seconds"]) <= payload["workload"]["chunks"]
            assert "4" in entry["speedups"]


class TestValidatorRejections:
    def test_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_parallel(bad)

    def test_speedup_below_floor(self, payload):
        bad = copy.deepcopy(payload)
        bad["overall_speedup_4_workers"] = 1.1
        with pytest.raises(TraceSchemaError, match="floor"):
            validate_bench_parallel(bad)

    def test_nonidentical_embeddings(self, payload):
        bad = copy.deepcopy(payload)
        bad["queries"][0]["embeddings_identical"] = False
        with pytest.raises(TraceSchemaError, match="embeddings_identical"):
            validate_bench_parallel(bad)

    def test_leaked_segments(self, payload):
        bad = copy.deepcopy(payload)
        bad["shm_segments_leaked"] = 2
        with pytest.raises(TraceSchemaError, match="shm_segments_leaked"):
            validate_bench_parallel(bad)

    def test_unknown_speedup_source(self, payload):
        bad = copy.deepcopy(payload)
        bad["speedup_source"] = "guessed"
        with pytest.raises(TraceSchemaError, match="speedup_source"):
            validate_bench_parallel(bad)

    def test_measured_requires_four_cpus(self, payload):
        bad = copy.deepcopy(payload)
        bad["speedup_source"] = "measured"
        bad["host_cpus"] = 1
        with pytest.raises(TraceSchemaError, match="CPUs"):
            validate_bench_parallel(bad)

    def test_missing_four_worker_speedup(self, payload):
        bad = copy.deepcopy(payload)
        del bad["queries"][0]["speedups"]["4"]
        with pytest.raises(TraceSchemaError, match="speedups"):
            validate_bench_parallel(bad)


class TestCheckedInPayload:
    def test_repo_payload_validates(self):
        path = _BENCH_PATH.parent.parent / "BENCH_parallel.json"
        payload = json.loads(path.read_text())
        validate_bench_parallel(payload)

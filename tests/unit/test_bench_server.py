"""Unit tests for the server benchmark's BENCH_server.json contract."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_SERVER_SCHEMA_VERSION,
    TraceSchemaError,
    validate_bench_server,
)

_BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_server.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_server", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Tiny scale: the schema, the counter accounting and the two-mode
    # agreement are under test here, not the speedup headline.
    return bench_module.run_server_benchmark(
        vertices=200,
        tenants=2,
        clients=3,
        workers=2,
        distinct=2,
        requests_per_client=4,
        query_size=5,
        match_limit=500,
    )


class TestPayload:
    def test_validates_and_is_json_serializable(self, payload):
        validate_bench_server(payload)
        json.dumps(payload)

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_SERVER_SCHEMA_VERSION
        assert payload["benchmark"] == "server-throughput"

    def test_workload_shape(self, payload):
        workload = payload["workload"]
        assert workload["total_requests"] == 3 * 4
        assert workload["data_vertices"] == 200

    def test_every_request_completed_in_both_modes(self, payload):
        for mode in ("coalescing_on", "coalescing_off"):
            counters = payload[mode]["counters"]
            assert counters["serve.completed"] == 12
            assert counters["serve.admitted"] == 12

    def test_coalescing_off_executes_every_request(self, payload):
        counters = payload["coalescing_off"]["counters"]
        assert counters["serve.executed"] == 12
        assert counters.get("serve.coalesced", 0) == 0

    def test_coalescing_on_executes_fewer(self, payload):
        on = payload["coalescing_on"]["counters"]
        off = payload["coalescing_off"]["counters"]
        assert on["serve.executed"] <= off["serve.executed"]
        assert on["serve.executed"] + on["serve.coalesced"] == 12

    def test_results_agree(self, payload):
        assert payload["results_agree"] is True

    def test_percentiles_ordered(self, payload):
        for mode in ("coalescing_on", "coalescing_off"):
            stats = payload[mode]
            assert stats["p99_ms"] >= stats["p50_ms"] > 0


class TestValidatorRejections:
    @pytest.fixture
    def valid(self, payload):
        return copy.deepcopy(payload)

    def test_wrong_schema_version(self, valid):
        valid["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_server(valid)

    def test_wrong_benchmark_id(self, valid):
        valid["benchmark"] = "something-else"
        with pytest.raises(TraceSchemaError, match="benchmark id"):
            validate_bench_server(valid)

    def test_inconsistent_total(self, valid):
        valid["workload"]["total_requests"] += 1
        with pytest.raises(TraceSchemaError, match="total_requests"):
            validate_bench_server(valid)

    def test_missing_mode(self, valid):
        del valid["coalescing_off"]
        with pytest.raises(TraceSchemaError, match="coalescing_off"):
            validate_bench_server(valid)

    def test_completed_short_of_workload(self, valid):
        valid["coalescing_on"]["counters"]["serve.completed"] -= 1
        with pytest.raises(TraceSchemaError, match="serve.completed"):
            validate_bench_server(valid)

    def test_no_coalescing_observed(self, valid):
        valid["coalescing_on"]["counters"]["serve.coalesced"] = 0
        with pytest.raises(TraceSchemaError, match="serve.coalesced"):
            validate_bench_server(valid)

    def test_coalescing_executed_more_than_off(self, valid):
        valid["coalescing_on"]["counters"]["serve.executed"] = (
            valid["coalescing_off"]["counters"]["serve.executed"] + 1
        )
        with pytest.raises(TraceSchemaError, match="execute more often"):
            validate_bench_server(valid)

    def test_results_disagree(self, valid):
        valid["results_agree"] = False
        with pytest.raises(TraceSchemaError, match="results_agree"):
            validate_bench_server(valid)

    def test_inverted_percentiles(self, valid):
        valid["coalescing_on"]["p50_ms"] = (
            valid["coalescing_on"]["p99_ms"] + 1.0
        )
        with pytest.raises(TraceSchemaError, match="p99_ms"):
            validate_bench_server(valid)

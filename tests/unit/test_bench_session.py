"""Unit tests for the session benchmark's BENCH_session.json contract."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_SESSION_SCHEMA_VERSION,
    TraceSchemaError,
    validate_bench_session,
)

_BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_session.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_session", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench_module):
    # Tiny scale: the schema and the cache accounting are under test
    # here, not the speedup headline.
    return bench_module.run_session_benchmark(
        vertices=200, distinct=2, repeats=3, query_size=5, match_limit=50
    )


class TestPayload:
    def test_validates_and_is_json_serializable(self, payload):
        validate_bench_session(payload)
        json.dumps(payload)

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_SESSION_SCHEMA_VERSION
        assert payload["benchmark"] == "session-throughput"

    def test_workload_shape(self, payload):
        workload = payload["workload"]
        assert workload["total_queries"] == 2 * 3
        assert workload["data_vertices"] == 200

    def test_matches_agree(self, payload):
        assert payload["matches_agree"] is True

    def test_cache_accounting(self, payload):
        for which in ("plan", "prep"):
            info = payload["cache"][which]
            assert info["hits"] + info["misses"] == 6
            assert info["misses"] == 2     # one per distinct pattern

    def test_speedup_is_consistent(self, payload):
        assert payload["speedup_session_vs_one_shot"] == pytest.approx(
            payload["one_shot"]["seconds_total"]
            / payload["session"]["seconds_total"]
        )


class TestValidatorRejects:
    def test_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_session(bad)

    def test_wrong_benchmark_id(self, payload):
        bad = copy.deepcopy(payload)
        bad["benchmark"] = "something-else"
        with pytest.raises(TraceSchemaError, match="benchmark id"):
            validate_bench_session(bad)

    def test_inconsistent_workload_total(self, payload):
        bad = copy.deepcopy(payload)
        bad["workload"]["total_queries"] += 1
        with pytest.raises(TraceSchemaError, match="total_queries"):
            validate_bench_session(bad)

    def test_cache_counters_must_cover_workload(self, payload):
        bad = copy.deepcopy(payload)
        bad["cache"]["plan"]["hits"] += 1
        with pytest.raises(TraceSchemaError, match="hits"):
            validate_bench_session(bad)

    def test_disagreeing_matches_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["matches_agree"] = False
        with pytest.raises(TraceSchemaError, match="matches_agree"):
            validate_bench_session(bad)

    def test_missing_mode_timings(self, payload):
        bad = copy.deepcopy(payload)
        del bad["session"]["seconds_per_query"]
        with pytest.raises(TraceSchemaError, match="seconds_per_query"):
            validate_bench_session(bad)

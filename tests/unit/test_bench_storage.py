"""Unit tests for the storage benchmark's BENCH_storage.json contract.

The live benchmark (subprocess out-of-core half included) is exercised
by the CI storage-smoke job; here we pin the validator's honesty rules
against the checked-in payload and targeted mutations of it.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_STORAGE_SCHEMA_VERSION,
    MAX_MMAP_WARM_OVERHEAD,
    MAX_OUT_OF_CORE_RSS_RATIO,
    TraceSchemaError,
    validate_bench_storage,
)

_REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def payload():
    return json.loads((_REPO / "BENCH_storage.json").read_text())


class TestCheckedInPayload:
    def test_repo_payload_validates(self, payload):
        validate_bench_storage(payload)
        json.dumps(payload)

    def test_results_payload_matches_schema_too(self):
        path = _REPO / "benchmarks" / "results" / "BENCH_storage.json"
        validate_bench_storage(json.loads(path.read_text()))

    def test_schema_stamp(self, payload):
        assert payload["schema_version"] == BENCH_STORAGE_SCHEMA_VERSION
        assert payload["benchmark"] == "storage-backends"

    def test_out_of_core_claim_is_genuine(self, payload):
        workload = payload["out_of_core"]["workload"]
        assert workload["array_bytes"] > workload["memory_budget_bytes"]
        assert payload["out_of_core"]["rss_ratio"] <= MAX_OUT_OF_CORE_RSS_RATIO

    def test_warm_overhead_within_ceiling(self, payload):
        assert payload["warm"]["mmap_overhead"] <= MAX_MMAP_WARM_OVERHEAD

    def test_nothing_leaked(self, payload):
        assert payload["shm_segments_leaked"] == 0
        assert payload["tempfiles_leaked"] == 0


class TestValidatorRejections:
    def test_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_storage(bad)

    def test_wrong_benchmark_id(self, payload):
        bad = copy.deepcopy(payload)
        bad["benchmark"] = "storage"
        with pytest.raises(TraceSchemaError, match="benchmark id"):
            validate_bench_storage(bad)

    def test_warm_overhead_above_ceiling(self, payload):
        bad = copy.deepcopy(payload)
        bad["warm"]["mmap_seconds"] = bad["warm"]["in_memory_seconds"] * 2.0
        bad["warm"]["mmap_overhead"] = 2.0
        with pytest.raises(TraceSchemaError, match="ceiling"):
            validate_bench_storage(bad)

    def test_warm_overhead_must_be_derived(self, payload):
        # The recorded ratio has to equal the recorded timings — a
        # hand-edited overhead is rejected even when under the ceiling.
        bad = copy.deepcopy(payload)
        bad["warm"]["mmap_overhead"] = 1.0
        with pytest.raises(TraceSchemaError, match="must equal"):
            validate_bench_storage(bad)

    def test_warm_results_must_be_identical(self, payload):
        bad = copy.deepcopy(payload)
        bad["warm"]["results_identical"] = False
        with pytest.raises(TraceSchemaError, match="results_identical"):
            validate_bench_storage(bad)

    def test_workload_must_exceed_budget(self, payload):
        bad = copy.deepcopy(payload)
        workload = bad["out_of_core"]["workload"]
        workload["memory_budget_bytes"] = workload["array_bytes"] + 1
        with pytest.raises(TraceSchemaError, match="not out-of-core"):
            validate_bench_storage(bad)

    def test_rss_ratio_above_ceiling(self, payload):
        bad = copy.deepcopy(payload)
        ooc = bad["out_of_core"]
        ooc["mmap_peak_rss_bytes"] = ooc["in_memory_peak_rss_bytes"]
        ooc["rss_ratio"] = 1.0
        with pytest.raises(TraceSchemaError, match="ceiling"):
            validate_bench_storage(bad)

    def test_rss_ratio_must_be_derived(self, payload):
        bad = copy.deepcopy(payload)
        bad["out_of_core"]["rss_ratio"] = 0.1
        with pytest.raises(TraceSchemaError, match="must equal"):
            validate_bench_storage(bad)

    def test_ooc_results_must_be_identical(self, payload):
        bad = copy.deepcopy(payload)
        bad["out_of_core"]["results_identical"] = False
        with pytest.raises(TraceSchemaError, match="results_identical"):
            validate_bench_storage(bad)

    def test_leaked_segments(self, payload):
        bad = copy.deepcopy(payload)
        bad["shm_segments_leaked"] = 1
        with pytest.raises(TraceSchemaError, match="shm_segments_leaked"):
            validate_bench_storage(bad)

    def test_leaked_tempfiles(self, payload):
        bad = copy.deepcopy(payload)
        bad["tempfiles_leaked"] = 1
        with pytest.raises(TraceSchemaError, match="tempfiles_leaked"):
            validate_bench_storage(bad)

    def test_missing_half_rejected(self, payload):
        bad = copy.deepcopy(payload)
        del bad["out_of_core"]
        with pytest.raises(TraceSchemaError, match="out_of_core"):
            validate_bench_storage(bad)

    def test_nonpositive_timing_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["warm"]["shm_seconds"] = 0
        with pytest.raises(TraceSchemaError, match="shm_seconds"):
            validate_bench_storage(bad)

"""Unit tests for the CandidateSets container."""

import pytest

from repro.filtering import CandidateSets
from repro.graph import Graph


@pytest.fixture
def query():
    return Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])


class TestConstruction:
    def test_sorted_and_deduplicated(self, query):
        cs = CandidateSets(query, [[3, 1, 3], [2], []])
        assert cs[0] == [1, 3]
        assert cs[1] == [2]
        assert cs[2] == []

    def test_wrong_length_rejected(self, query):
        with pytest.raises(ValueError, match="expected 3"):
            CandidateSets(query, [[1], [2]])

    def test_len(self, query):
        assert len(CandidateSets(query, [[], [], []])) == 3


class TestAccess:
    def test_membership(self, query):
        cs = CandidateSets(query, [[1, 3], [2], [5]])
        assert cs.membership(0) == frozenset({1, 3})
        assert cs.contains(0, 3)
        assert not cs.contains(0, 2)

    def test_size(self, query):
        cs = CandidateSets(query, [[1, 3], [2], []])
        assert cs.size(0) == 2
        assert cs.size(2) == 0


class TestMetrics:
    def test_total_and_average(self, query):
        cs = CandidateSets(query, [[1, 3], [2], [4, 5, 6]])
        assert cs.total_size == 6
        assert cs.average_size == 2.0

    def test_empty_query(self):
        q = Graph(labels=[], edges=[])
        cs = CandidateSets(q, [])
        assert cs.average_size == 0.0

    def test_has_empty_set(self, query):
        assert CandidateSets(query, [[1], [], [2]]).has_empty_set
        assert not CandidateSets(query, [[1], [9], [2]]).has_empty_set

    def test_memory_bytes(self, query):
        cs = CandidateSets(query, [[1, 3], [2], []])
        assert cs.memory_bytes == 8 * 3


class TestTransforms:
    def test_as_dict(self, query):
        cs = CandidateSets(query, [[1], [2], [3]])
        assert cs.as_dict() == {0: [1], 1: [2], 2: [3]}

    def test_restricted(self, query):
        cs = CandidateSets(query, [[1, 2, 3], [4, 5], [6]])
        r = cs.restricted([[2, 3, 9], [5], []])
        assert r.as_dict() == {0: [2, 3], 1: [5], 2: []}

    def test_restricted_wrong_length(self, query):
        cs = CandidateSets(query, [[1], [2], [3]])
        with pytest.raises(ValueError):
            cs.restricted([[1]])

    def test_repr(self, query):
        assert "sizes=[1, 1, 1]" in repr(CandidateSets(query, [[1], [2], [3]]))

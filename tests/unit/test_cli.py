"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import Graph, load_graph, save_graph


@pytest.fixture
def graph_files(tmp_path):
    data = Graph(
        labels=[0, 1, 0, 1, 0],
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)],
    )
    query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    data_path = tmp_path / "data.graph"
    query_path = tmp_path / "query.graph"
    save_graph(data, data_path)
    save_graph(query, query_path)
    return str(query_path), str(data_path)


class TestMatchCommand:
    def test_basic(self, graph_files, capsys):
        query_path, data_path = graph_files
        code = main(["match", "-q", query_path, "-d", data_path, "-a", "GQL"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matches" in out
        assert "GQL" in out

    def test_glasgow(self, graph_files, capsys):
        query_path, data_path = graph_files
        code = main(["match", "-q", query_path, "-d", data_path, "-a", "GLW"])
        assert code == 0
        assert "GLW" in capsys.readouterr().out

    @pytest.mark.parametrize("kernel", ["scalar", "numpy", "bitset"])
    def test_kernel_flag(self, graph_files, capsys, kernel):
        query_path, data_path = graph_files
        code = main(
            ["match", "-q", query_path, "-d", data_path, "-a", "CECI",
             "--kernel", kernel]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"kernel        : {kernel}" in out

    def test_kernel_flag_rejects_unknown(self, graph_files, capsys):
        query_path, data_path = graph_files
        with pytest.raises(SystemExit):
            main(["match", "-q", query_path, "-d", data_path,
                  "--kernel", "simd512"])

    def test_counts_agree(self, graph_files, capsys):
        query_path, data_path = graph_files
        main(["match", "-q", query_path, "-d", data_path, "-a", "GQL"])
        gql_out = capsys.readouterr().out
        main(["match", "-q", query_path, "-d", data_path, "-a", "RIfs"])
        ri_out = capsys.readouterr().out

        def count(out):
            for line in out.splitlines():
                if line.startswith("matches"):
                    return int(line.split(":")[1])
            raise AssertionError(out)

        assert count(gql_out) == count(ri_out)


class TestObservabilityFlags:
    def test_trace_writes_valid_jsonl(self, graph_files, tmp_path, capsys):
        from repro.obs import validate_trace_file

        query_path, data_path = graph_files
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["match", "-q", query_path, "-d", data_path, "-a", "CFL",
             "--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace" in out
        summary = validate_trace_file(str(trace_path))
        assert summary["names"]["match"] == 1
        for phase in ("filter", "order", "enumerate"):
            assert summary["names"][phase] == 1

    def test_metrics_out_writes_counters(self, graph_files, tmp_path, capsys):
        import json

        query_path, data_path = graph_files
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["match", "-q", query_path, "-d", data_path, "-a", "GQL",
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["enumerate.recursion_calls"] > 0
        assert "filter.candidates_final" in payload["counters"]
        assert set(payload["phase_seconds"]) == {"filter", "order", "enumerate"}
        assert payload["filter_stages"]

    def test_trace_and_metrics_together(self, graph_files, tmp_path, capsys):
        query_path, data_path = graph_files
        code = main(
            ["match", "-q", query_path, "-d", data_path, "-a", "CECI",
             "--trace", str(tmp_path / "t.jsonl"),
             "--metrics-out", str(tmp_path / "m.json")]
        )
        assert code == 0
        assert (tmp_path / "t.jsonl").exists()
        assert (tmp_path / "m.json").exists()

    def test_no_tracer_left_installed_after_run(self, graph_files, tmp_path):
        from repro.obs import get_tracer

        query_path, data_path = graph_files
        main(
            ["match", "-q", query_path, "-d", data_path, "-a", "CFL",
             "--trace", str(tmp_path / "trace.jsonl")]
        )
        assert get_tracer() is None


class TestCompareCommand:
    def test_table_printed(self, graph_files, capsys):
        query_path, data_path = graph_files
        code = main(
            [
                "compare", "-q", query_path, "-d", data_path,
                "-a", "GQL", "RI", "GLW",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("GQL", "RI", "GLW"):
            assert name in out


class TestGenerateAndExtract:
    def test_generate_rmat(self, tmp_path, capsys):
        out_path = tmp_path / "g.graph"
        code = main(
            [
                "generate", "--model", "rmat", "-n", "200",
                "--degree", "6", "--labels", "4", "--seed", "1",
                "--clustering", "0.3", "-o", str(out_path),
            ]
        )
        assert code == 0
        g = load_graph(out_path)
        assert g.num_vertices == 200

    def test_generate_er(self, tmp_path):
        out_path = tmp_path / "g.graph"
        assert (
            main(
                [
                    "generate", "--model", "er", "-n", "50",
                    "--degree", "4", "--labels", "3", "-o", str(out_path),
                ]
            )
            == 0
        )
        assert load_graph(out_path).num_vertices == 50

    def test_extract_query(self, tmp_path, capsys):
        data_path = tmp_path / "g.graph"
        query_path = tmp_path / "q.graph"
        main(
            [
                "generate", "--model", "rmat", "-n", "300", "--degree", "8",
                "--labels", "4", "--seed", "2", "--clustering", "0.3",
                "-o", str(data_path),
            ]
        )
        code = main(
            [
                "extract-query", "-d", str(data_path), "-s", "6",
                "--density", "dense", "--seed", "3", "-o", str(query_path),
            ]
        )
        assert code == 0
        q = load_graph(query_path)
        assert q.num_vertices == 6
        assert q.average_degree >= 3.0


class TestInfoCommands:
    def test_algorithms_lists_presets(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "GQLfs" in out
        assert "GLW" in out

    def test_algorithms_shows_component_breakdown(self, capsys):
        from repro.core import algorithm_components, available_algorithms

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for column in ("filter", "ordering", "ComputeLC", "failing sets"):
            assert column in out
        # Every preset row carries its registry-sourced components.
        for name in available_algorithms():
            parts = algorithm_components(name)
            row = next(
                line for line in out.splitlines()
                if line.split("|")[0].strip() == name
            )
            for key in ("filter", "ordering", "lc", "aux"):
                assert parts[key] in row, (name, key)

    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Yeast" in out and "eu2005" in out

    def test_datasets_build_requires_output(self, capsys):
        assert main(["datasets", "--build", "ye"]) == 2

    def test_datasets_build(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        out_path = tmp_path / "ye.graph"
        assert main(["datasets", "--build", "ye", "-o", str(out_path)]) == 0
        g = load_graph(out_path)
        assert g.num_vertices > 0


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["fuzz", "--cases", "3", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
        assert "3/3" in out

    def test_replay_requires_corpus_dir(self, capsys):
        assert main(["fuzz", "--replay"]) == 2
        assert "--corpus-dir" in capsys.readouterr().err

    def test_replay_empty_directory(self, tmp_path, capsys):
        code = main(["fuzz", "--replay", "--corpus-dir", str(tmp_path)])
        assert code == 0
        assert "no repro files" in capsys.readouterr().out

    def test_replay_pinned_corpus_is_clean(self, capsys):
        import os

        corpus = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "corpus",
        )
        code = main(["fuzz", "--replay", "--corpus-dir", corpus])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 regression(s)" in out
        assert "REPRODUCES" not in out

    def test_replay_flags_regression(self, tmp_path, capsys):
        from repro.graph import Graph
        from repro.qa.corpus import make_record, save_repro

        query = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        record = make_record(
            kind="crash",
            query=query,
            data=query,
            config_a={"algorithm": "NO-SUCH-PRESET", "kernel": None,
                      "mode": "oneshot"},
            detail="synthetic regression",
        )
        save_repro(str(tmp_path / "repro-crash-synthetic.json"), record)
        code = main(["fuzz", "--replay", "--corpus-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REPRODUCES" in out
        assert "1 regression(s)" in out

    def test_time_boxed_run_reports_it(self, capsys):
        code = main(["fuzz", "--cases", "100000", "--seed", "0",
                     "--max-seconds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "time-boxed" in out


class TestServeCommand:
    @pytest.fixture
    def stub_serve_forever(self, monkeypatch):
        # The real loop blocks until killed; cut it off after startup so
        # the command path (arg parsing, graph loading, bind, shutdown)
        # runs end to end in-process.
        from repro.serve.server import MatchServer

        async def return_immediately(self):
            if self._server is None:
                await self.start()

        monkeypatch.setattr(MatchServer, "serve_forever", return_immediately)

    def test_serve_loads_named_graphs_and_binds(
        self, graph_files, capsys, stub_serve_forever
    ):
        _, data_path = graph_files
        code = main(["serve", "--port", "0", "--graph", f"social={data_path}"])
        out = capsys.readouterr().out
        assert code == 0
        assert "resident graph 'social'" in out
        assert "serving on 127.0.0.1:" in out

    def test_serve_bare_path_is_default_graph(
        self, graph_files, capsys, stub_serve_forever
    ):
        _, data_path = graph_files
        code = main(["serve", "--port", "0", "--graph", data_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "resident graph 'default'" in out

    def test_serve_without_graphs_warns(self, capsys, stub_serve_forever):
        code = main(["serve", "--port", "0", "--no-coalesce",
                     "--default-budget-ms", "250"])
        out = capsys.readouterr().out
        assert code == 0
        assert "add_graph over the wire" in out
        assert "coalesce=False" in out


class TestConvertCommand:
    def test_text_to_rgf_and_back(self, graph_files, tmp_path, capsys):
        _, data_path = graph_files
        rgf = tmp_path / "data.rgf"
        code = main(["convert", "-i", data_path, "-o", str(rgf),
                     "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated" in out
        assert load_graph(rgf) == load_graph(data_path)

        back = tmp_path / "back.graph"
        code = main(["convert", "-i", str(rgf), "-o", str(back),
                     "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "round-trip identical" in out
        assert load_graph(back) == load_graph(data_path)

    def test_rgf_match_runs_from_converted_file(self, graph_files,
                                                tmp_path, capsys):
        query_path, data_path = graph_files
        rgf = tmp_path / "data.rgf"
        assert main(["convert", "-i", data_path, "-o", str(rgf)]) == 0
        capsys.readouterr()
        code = main(["match", "-q", query_path, "-d", str(rgf), "-a", "GQL"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matches" in out

"""Unit tests for NEC query compression (TurboIso-style, Section 3.4)."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.baselines import brute_force_matches
from repro.extensions import (
    compress_query,
    count_matches_compressed,
    match_compressed,
    neighborhood_equivalence_classes,
)
from repro.graph import Graph


class TestClasses:
    def test_star_leaves_merge(self):
        star = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
        assert neighborhood_equivalence_classes(star) == [[0], [1, 2, 3]]

    def test_same_label_clique_merges(self):
        clique = Graph(
            labels=[0, 0, 0, 0],
            edges=[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
        assert neighborhood_equivalence_classes(clique) == [[0, 1, 2, 3]]

    def test_different_labels_do_not_merge(self):
        star = Graph(labels=[0, 1, 2, 1], edges=[(0, 1), (0, 2), (0, 3)])
        assert neighborhood_equivalence_classes(star) == [[0], [1, 3], [2]]

    def test_path_has_no_twins(self):
        path = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        # Endpoints share the neighborhood {1}: false twins.
        assert neighborhood_equivalence_classes(path) == [[0, 2], [1]]

    def test_paper_query_incompressible(self):
        classes = neighborhood_equivalence_classes(PAPER_QUERY)
        assert classes == [[0], [1], [2], [3]]


class TestCompressedQuery:
    def test_star_structure(self):
        star = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
        c = compress_query(star)
        assert c.num_classes == 2
        assert c.compression_ratio == 2.0
        assert c.expansion_factor == 6  # 3! leaf permutations
        assert c.clique == (False, False)
        assert c.edges == ((0, 1),)

    def test_clique_flag(self):
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        c = compress_query(triangle)
        assert c.clique == (True,)
        assert c.expansion_factor == 6

    def test_neighbor_classes(self):
        star = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
        c = compress_query(star)
        assert c.neighbor_classes(0) == [1]
        assert c.neighbor_classes(1) == [0]


class TestMatching:
    def test_paper_example(self):
        result = match_compressed(PAPER_QUERY, PAPER_DATA, match_limit=None)
        assert result.num_matches == 2
        assert set(result.embeddings) == PAPER_MATCHES

    def test_star_counts(self):
        host = Graph(
            labels=[0, 1, 1, 1, 1, 0],
            edges=[(0, 1), (0, 2), (0, 3), (0, 4), (5, 1)],
        )
        star = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
        assert count_matches_compressed(star, host) == len(
            brute_force_matches(star, host)
        )

    def test_clique_query_counts(self):
        host = Graph(
            labels=[0] * 5,
            edges=[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (2, 4), (3, 0)],
        )
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        assert count_matches_compressed(triangle, host) == len(
            brute_force_matches(triangle, host)
        )

    def test_embeddings_are_valid(self):
        host = Graph(
            labels=[0, 1, 1, 1, 1],
            edges=[(0, 1), (0, 2), (0, 3), (0, 4)],
        )
        star = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        result = match_compressed(star, host, match_limit=None)
        oracle = brute_force_matches(star, host)
        assert set(result.embeddings) == set(oracle)

    def test_match_limit_respected(self):
        host = Graph(
            labels=[0, 1, 1, 1, 1],
            edges=[(0, 1), (0, 2), (0, 3), (0, 4)],
        )
        star = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        result = match_compressed(star, host, match_limit=5)
        # Counting proceeds in expansion-factor steps; the cap stops at or
        # just past the limit.
        assert 5 <= result.num_matches <= 6

    def test_no_match(self):
        host = Graph(labels=[2, 2, 2], edges=[(0, 1), (1, 2)])
        star = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        assert count_matches_compressed(star, host) == 0

    def test_time_limit(self):
        from repro.graph import rmat_graph

        host = rmat_graph(300, 12.0, 1, seed=5, clustering=0.3)
        clique = Graph(
            labels=[0] * 5,
            edges=[(a, b) for a in range(5) for b in range(a + 1, 5)],
        )
        result = match_compressed(
            clique, host, match_limit=None, time_limit=0.01
        )
        # Either finishes very fast or reports unsolved — never hangs.
        assert result.solved or result.num_matches >= 0


@pytest.mark.parametrize("seed", range(8))
def test_agrees_with_brute_force_randomized(seed):
    from repro.graph import erdos_renyi_graph, extract_query
    from repro.errors import InvalidQueryError

    host = erdos_renyi_graph(14, 4.0, 2, seed=500 + seed)
    try:
        query = extract_query(host, 4, seed=seed, max_attempts=50)
    except InvalidQueryError:
        pytest.skip("host too sparse for a 4-vertex query")
    oracle = brute_force_matches(query, host)
    result = match_compressed(
        query, host, match_limit=None, store_limit=len(oracle) + 10
    )
    assert result.num_matches == len(oracle)
    assert set(result.embeddings) == set(oracle)

"""Unit tests for the subgraph-containment application."""

import pytest

from repro.applications import GraphCollection, containment_search
from repro.baselines import brute_force_matches
from repro.graph import Graph, erdos_renyi_graph, extract_query


@pytest.fixture
def collection():
    return GraphCollection(
        [
            Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)]),           # path
            Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)]),   # triangle
            Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3)]),
            Graph(labels=[2, 2], edges=[(0, 1)]),                      # tiny
        ]
    )


class TestGlobalFilters:
    def test_label_filter(self, collection):
        q = Graph(labels=[2, 2, 2], edges=[(0, 1), (1, 2)])
        result = collection.search(q)
        assert result.containing == []
        # Every graph is eliminated without verification (no graph has
        # three label-2 vertices).
        assert result.verified == 0
        assert result.filtered_out == len(collection)

    def test_size_filter(self, collection):
        q = Graph(labels=[0] * 5, edges=[(i, i + 1) for i in range(4)])
        result = collection.search(q)
        assert result.containing == []
        assert result.verified == 0

    def test_degree_filter(self):
        coll = GraphCollection(
            [Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])]
        )
        star = Graph(labels=[0, 0, 0, 0], edges=[(0, 1), (0, 2), (0, 3)])
        result = coll.search(star)
        assert result.verified == 0  # max degree 2 < 3

    def test_filter_rate(self, collection):
        q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        result = collection.search(q)
        assert 0.0 <= result.filter_rate <= 1.0


class TestSearch:
    def test_finds_containing_graphs(self, collection):
        q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        result = collection.search(q)
        assert result.containing == [0, 2]

    def test_triangle_query(self, collection):
        q = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        assert collection.search(q).containing == [1]

    def test_one_shot_helper(self, collection):
        q = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        result = containment_search(q, [collection[i] for i in range(len(collection))])
        assert result.containing == [1]

    def test_add_returns_index(self):
        coll = GraphCollection()
        idx = coll.add(Graph(labels=[0], edges=[]))
        assert idx == 0
        assert len(coll) == 1

    def test_agrees_with_brute_force(self):
        graphs = [erdos_renyi_graph(12, 3.5, 2, seed=s) for s in range(8)]
        query = extract_query(graphs[0], 4, seed=3)
        result = containment_search(query, graphs)
        expected = [
            i
            for i, g in enumerate(graphs)
            if brute_force_matches(query, g)
        ]
        assert result.containing == expected
        assert result.timeouts == 0

"""Unit tests for the core layer: specs, registry, API, results."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro import (
    AlgorithmSpec,
    available_algorithms,
    count_matches,
    get_algorithm,
    has_match,
    match,
    recommended_spec,
)
from repro.core.algorithms import OPTIMIZED_NAMES, ORIGINAL_NAMES, resolve
from repro.errors import ConfigurationError, InvalidQueryError
from repro.graph import Graph


class TestRegistry:
    def test_all_names_resolve(self):
        for name in available_algorithms():
            if name == "recommended":
                continue
            spec = get_algorithm(name)
            assert spec.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_original_names_present(self):
        assert set(ORIGINAL_NAMES) <= set(available_algorithms())

    def test_optimized_use_intersection_lc(self):
        from repro.enumeration import IntersectionLC

        for name in OPTIMIZED_NAMES:
            spec = get_algorithm(name)
            assert isinstance(spec.lc, IntersectionLC), name
            assert spec.aux_scope == "all", name

    def test_fs_variants_enable_failing_sets(self):
        assert get_algorithm("GQLfs").failing_sets
        assert get_algorithm("RIfs").failing_sets
        assert not get_algorithm("GQL-opt").failing_sets

    def test_originals_match_paper_composition(self):
        from repro.enumeration import (
            CandidateScanLC,
            IntersectionLC,
            NeighborScanLC,
            TreeAdjacencyLC,
            VF2ppLC,
        )

        assert isinstance(get_algorithm("QSI").lc, NeighborScanLC)
        assert isinstance(get_algorithm("GQL").lc, CandidateScanLC)
        assert isinstance(get_algorithm("CFL").lc, TreeAdjacencyLC)
        assert isinstance(get_algorithm("CECI").lc, IntersectionLC)
        assert isinstance(get_algorithm("2PP").lc, VF2ppLC)
        assert get_algorithm("CFL").aux_scope == "tree"
        assert get_algorithm("GQL").aux_scope == "none"
        assert get_algorithm("DP").adaptive


class TestSpec:
    def test_with_failing_sets_renames(self):
        spec = get_algorithm("GQL-opt")
        fs = spec.with_failing_sets()
        assert fs.failing_sets
        assert fs.name == "GQL-optfs"
        assert not spec.failing_sets  # original untouched (frozen)

    def test_with_failing_sets_idempotent(self):
        spec = get_algorithm("GQLfs")
        assert spec.with_failing_sets() is spec

    def test_disable_failing_sets(self):
        spec = get_algorithm("GQLfs").with_failing_sets(False)
        assert not spec.failing_sets
        assert spec.name == "GQL"

    def test_renamed(self):
        assert get_algorithm("RI").renamed("X").name == "X"


class TestRecommended:
    def test_sparse_data_gets_ri(self):
        sparse = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        spec = recommended_spec(PAPER_QUERY, sparse)
        assert type(spec.ordering).__name__ == "RIOrdering"

    def test_dense_data_gets_gql(self):
        n = 12
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        dense = Graph(labels=[0] * n, edges=edges)
        spec = recommended_spec(PAPER_QUERY, dense)
        assert type(spec.ordering).__name__ == "GraphQLOrdering"

    def test_failing_sets_only_on_large_queries(self):
        small = PAPER_QUERY
        assert not recommended_spec(small, PAPER_DATA).failing_sets
        big = Graph(
            labels=list(range(10)),
            edges=[(i, i + 1) for i in range(9)],
        )
        assert recommended_spec(big, PAPER_DATA).failing_sets

    def test_resolve_requires_graphs(self):
        with pytest.raises(ConfigurationError, match="recommended"):
            resolve("recommended")

    def test_resolve_passthrough_spec(self):
        spec = get_algorithm("RI")
        assert resolve(spec) is spec


class TestMatchAPI:
    def test_match_result_fields(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert r.algorithm == "GQL"
        assert r.num_matches == 2
        assert r.solved
        assert set(r.embeddings) == PAPER_MATCHES
        assert r.preprocessing_seconds >= 0
        assert r.enumeration_seconds >= 0
        assert r.candidate_average is not None
        assert r.order is not None

    def test_match_limit(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL", match_limit=1)
        assert r.num_matches == 1

    def test_store_limit(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL", store_limit=0)
        assert r.num_matches == 2
        assert r.embeddings == []

    def test_direct_enumeration_has_no_candidate_stats(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="RI")
        assert r.candidate_average is None
        assert r.memory_bytes == 0

    def test_adaptive_has_no_order(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="DP")
        assert r.order is None

    def test_count_matches(self):
        assert count_matches(PAPER_QUERY, PAPER_DATA, algorithm="CECI") == 2

    def test_has_match(self):
        assert has_match(PAPER_QUERY, PAPER_DATA)
        # A query with a label absent from the data graph cannot match.
        q = Graph(labels=[9, 9, 9], edges=[(0, 1), (1, 2)])
        assert not has_match(q, PAPER_DATA)

    def test_query_too_small_rejected(self):
        q = Graph(labels=[0, 1], edges=[(0, 1)])
        with pytest.raises(InvalidQueryError, match="at least 3"):
            match(q, PAPER_DATA)

    def test_disconnected_query_rejected(self):
        q = Graph(labels=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(InvalidQueryError, match="connected"):
            match(q, PAPER_DATA)

    def test_validate_skippable(self):
        q = Graph(labels=[0, 1], edges=[(0, 1)])
        # With validation off the tiny query simply runs.
        r = match(q, PAPER_DATA, algorithm="RI", validate=False)
        assert r.num_matches > 0

    def test_custom_spec_accepted(self):
        from repro.enumeration import IntersectionLC
        from repro.filtering import DPisoFilter
        from repro.ordering import RIOrdering

        spec = AlgorithmSpec(
            name="custom",
            filter=DPisoFilter(),
            ordering=RIOrdering(),
            lc=IntersectionLC(),
            aux_scope="all",
            failing_sets=True,
        )
        r = match(PAPER_QUERY, PAPER_DATA, algorithm=spec)
        assert r.algorithm == "custom"
        assert set(r.embeddings) == PAPER_MATCHES


class TestMatchResult:
    def test_time_properties(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert r.preprocessing_ms == r.preprocessing_seconds * 1000.0
        assert r.total_ms == r.preprocessing_ms + r.enumeration_ms

    def test_mappings_view(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert {tuple(sorted(m.items())) for m in r.mappings} == {
            tuple(enumerate(e)) for e in PAPER_MATCHES
        }

    def test_repr_mentions_status(self):
        r = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert "solved" in repr(r)

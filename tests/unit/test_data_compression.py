"""Unit tests for BoostIso-style data-graph compression."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.baselines import brute_force_matches
from repro.extensions import (
    compress_data_graph,
    count_matches_data_compressed,
    match_data_compressed,
)
from repro.graph import Graph


class TestCompression:
    def test_star_leaves_fold(self):
        host = Graph(labels=[0, 1, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        c = compress_data_graph(host)
        assert c.members == ((0,), (1, 2, 3, 4))
        assert c.compression_ratio == 2.5
        assert c.clique == (False, False)
        assert c.skeleton.num_edges == 1

    def test_clique_folds_to_one(self):
        k4 = Graph(
            labels=[0] * 4,
            edges=[(a, b) for a in range(4) for b in range(a + 1, 4)],
        )
        c = compress_data_graph(k4)
        assert c.members == ((0, 1, 2, 3),)
        assert c.clique == (True,)

    def test_labels_separate_classes(self):
        host = Graph(labels=[0, 1, 2, 1], edges=[(0, 1), (0, 2), (0, 3)])
        c = compress_data_graph(host)
        assert c.members == ((0,), (1, 3), (2,))

    def test_incompressible_graph(self):
        path = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
        c = compress_data_graph(path)
        assert c.compression_ratio == 1.0
        assert c.skeleton == path

    def test_skeleton_adjacency_uniform(self):
        host = Graph(
            labels=[0, 1, 1, 2],
            edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        c = compress_data_graph(host)
        # Classes: {0}, {1,2}, {3}; skeleton is a path through the pair.
        assert c.members == ((0,), (1, 2), (3,))
        assert c.skeleton.has_edge(0, 1) and c.skeleton.has_edge(1, 2)


class TestMatching:
    def test_paper_example(self):
        result = match_data_compressed(PAPER_QUERY, PAPER_DATA, match_limit=None)
        assert result.num_matches == 2
        assert set(result.embeddings) == PAPER_MATCHES

    def test_star_host_counts(self):
        host = Graph(labels=[0, 1, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        star = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        assert count_matches_data_compressed(star, host) == 12

    def test_clique_host_counts(self):
        k4 = Graph(
            labels=[0] * 4,
            edges=[(a, b) for a in range(4) for b in range(a + 1, 4)],
        )
        triangle = Graph(labels=[0] * 3, edges=[(0, 1), (1, 2), (0, 2)])
        assert count_matches_data_compressed(triangle, k4) == 24

    def test_capacity_respected(self):
        # Two query vertices need two distinct members of a 1-member class.
        host = Graph(labels=[0, 1], edges=[(0, 1)])
        query = Graph(labels=[1, 0, 1], edges=[(0, 1), (1, 2)])
        assert count_matches_data_compressed(query, host) == 0

    def test_non_clique_class_rejects_adjacent_pair(self):
        # Query edge mapped inside a false-twin (independent) class fails.
        host = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        query = Graph(labels=[1, 1, 0], edges=[(0, 1), (1, 2), (0, 2)])
        assert count_matches_data_compressed(query, host) == 0

    def test_compression_reuse_across_queries(self):
        host = Graph(labels=[0, 1, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        compressed = compress_data_graph(host)
        star2 = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        star3 = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
        a = match_data_compressed(star2, host, compressed=compressed)
        b = match_data_compressed(star3, host, compressed=compressed)
        assert a.num_matches == 12
        assert b.num_matches == 24

    def test_match_limit(self):
        host = Graph(labels=[0, 1, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        star = Graph(labels=[0, 1, 1], edges=[(0, 1), (0, 2)])
        result = match_data_compressed(star, host, match_limit=5)
        assert 5 <= result.num_matches <= 12


@pytest.mark.parametrize("seed", range(8))
def test_agrees_with_brute_force_randomized(seed):
    from repro.errors import InvalidQueryError
    from repro.graph import erdos_renyi_graph, extract_query

    host = erdos_renyi_graph(14, 4.0, 2, seed=800 + seed)
    try:
        query = extract_query(host, 4, seed=seed, max_attempts=50)
    except InvalidQueryError:
        pytest.skip("host too sparse")
    oracle = brute_force_matches(query, host)
    result = match_data_compressed(
        query, host, match_limit=None, store_limit=len(oracle) + 10
    )
    assert result.num_matches == len(oracle)
    assert set(result.embeddings) == set(oracle)

"""Run the doctest examples embedded in public docstrings.

Keeps every ``>>>`` block in the documentation honest.
"""

import doctest

import pytest

import repro.core.api
import repro.core.verify
import repro.enumeration.streaming
import repro.extensions.compression
import repro.filtering.graphql
import repro.graph.fingerprint
import repro.graph.graph
import repro.graph.io
import repro.study.reporting
import repro.utils.intersection
import repro.utils.kernels
import repro.utils.timer
import repro.applications.containment

MODULES = [
    repro.graph.graph,
    repro.graph.fingerprint,
    repro.graph.io,
    repro.utils.intersection,
    repro.utils.kernels,
    repro.utils.timer,
    repro.filtering.graphql,
    repro.core.api,
    repro.core.verify,
    repro.enumeration.streaming,
    repro.extensions.compression,
    repro.applications.containment,
    repro.study.reporting,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"

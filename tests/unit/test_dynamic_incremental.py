"""Unit tests for :mod:`repro.dynamic.incremental`.

The property suite (``tests/property/test_prop_dynamic.py``) explores
random interleavings; this file pins the deterministic contracts —
query-DAG shape, delta soundness on hand-built scenarios, and the
strict epoch ordering ``apply_delta`` enforces.
"""

import pytest

from repro.dynamic import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    DynamicGraph,
    IncrementalCandidates,
    Mutation,
)
from repro.dynamic.incremental import query_dag
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph


def triangle():
    return Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])


def host():
    # Two label-compatible triangles (0,1,2) and (3,4,5) plus a spare
    # vertex 6 with label 1 that is not yet wired into any triangle.
    return Graph(
        labels=[0, 1, 2, 0, 1, 2, 1],
        edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 6)],
    )


def test_query_dag_is_deterministic_and_covers_every_edge():
    query = Graph(labels=[0, 1, 2, 0], edges=[(0, 1), (1, 2), (2, 3), (0, 2)])
    order, parents, children = query_dag(query)
    assert order == query_dag(query)[0]
    assert sorted(order) == list(range(query.num_vertices))
    # Root: smallest-id maximum-degree vertex (degree 3 → vertex 2).
    assert order[0] == 2
    assert parents[order[0]] == []
    # Every query edge is oriented exactly once.
    oriented = {
        (min(u, p), max(u, p)) for u in parents for p in parents[u]
    }
    assert oriented == set(query.edges())
    # parents/children are mirror images.
    for u in parents:
        for p in parents[u]:
            assert u in children[p]
    # Parents precede children in the topo order.
    position = {u: i for i, u in enumerate(order)}
    for u in parents:
        assert all(position[p] < position[u] for p in parents[u])


def test_initial_build_contains_the_embedded_triangles():
    inc = IncrementalCandidates(triangle(), host())
    sets = inc.as_dict()
    assert {0, 3} <= set(sets[0])
    assert {1, 4} <= set(sets[1])
    assert {2, 5} <= set(sets[2])
    # The spare vertex 6 (label 1, but no triangle through it) must not
    # survive the two refinement passes.
    assert 6 not in sets[1]


def test_candidate_sets_container_matches_as_dict():
    inc = IncrementalCandidates(triangle(), host())
    container = inc.candidate_sets()
    assert isinstance(container, CandidateSets)
    assert container.as_dict() == inc.as_dict()


def test_added_edge_cascades_into_the_candidate_sets():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    assert 6 not in inc.as_dict()[1]
    # Wiring 6-0 closes the triangle (0, 6, 2).
    inc.apply_delta(dyn.add_edge(6, 0))
    assert 6 in inc.as_dict()[1]
    assert inc.equal_state(inc.rebuild())


def test_removed_edge_cascades_out_of_the_candidate_sets():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    # Breaking triangle (3, 4, 5) must evict all three vertices.
    inc.apply_delta(dyn.remove_edge(3, 4))
    sets = inc.as_dict()
    assert 3 not in sets[0] and 4 not in sets[1] and 5 not in sets[2]
    assert sets[0] == [0] and sets[1] == [1] and sets[2] == [2]
    assert inc.equal_state(inc.rebuild())


def test_added_vertex_grows_the_state_and_can_join_matches():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    delta = dyn.apply(
        [
            Mutation(ADD_VERTEX, 0),
            Mutation(ADD_EDGE, 7, 4),
            Mutation(ADD_EDGE, 7, 5),
        ]
    )
    inc.apply_delta(delta)
    assert inc.seed.shape[1] == dyn.num_vertices
    assert 7 in inc.as_dict()[0]  # (7, 4, 5) is a fresh triangle
    assert inc.equal_state(inc.rebuild())


def test_empty_delta_is_a_noop():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    before = inc.as_dict()
    inc.apply_delta(dyn.apply([Mutation(ADD_EDGE, 0, 1)]))  # already present
    assert inc.as_dict() == before


def test_apply_delta_requires_a_dynamic_graph():
    inc = IncrementalCandidates(triangle(), host())
    dyn = DynamicGraph(host())
    delta = dyn.add_edge(6, 0)
    with pytest.raises(ValueError, match="DynamicGraph"):
        inc.apply_delta(delta)


def test_apply_delta_enforces_strict_epoch_order():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    first = dyn.add_edge(6, 0)
    inc.apply_delta(first)
    # Replaying an already-folded delta is illegal (strict, not
    # idempotent — idempotency lives in Subscription.on_delta).
    with pytest.raises(ValueError, match="epoch"):
        inc.apply_delta(first)
    # Deltas must also be folded *immediately*: once the graph advances
    # past a delta that was never applied, both the stale delta and the
    # newest one are rejected — recovery is a rebuild().
    stale = dyn.remove_edge(6, 0)
    newest = dyn.add_edge(1, 6)
    with pytest.raises(ValueError, match="epoch"):
        inc.apply_delta(newest)  # skips `stale`
    with pytest.raises(ValueError, match="epoch"):
        inc.apply_delta(stale)  # graph already moved past it
    fresh = inc.rebuild()
    assert fresh.equal_state(IncrementalCandidates(triangle(), dyn))


def test_counters_record_the_incremental_work():
    dyn = DynamicGraph(host())
    inc = IncrementalCandidates(triangle(), dyn)
    assert inc.counters["dynamic.seed_checks"] == 0
    inc.apply_delta(dyn.add_edge(6, 0))
    assert inc.counters["dynamic.seed_checks"] > 0
    assert inc.counters["dynamic.flips"] > 0

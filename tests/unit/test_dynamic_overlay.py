"""Unit tests for :class:`repro.dynamic.overlay.DynamicGraph`.

Covers apply semantics (atomic batches, tolerant no-ops, strict
validation), epoch rules, overlay cancellation, snapshot caching and
byte parity, and manual/automatic compaction.
"""

import pytest

from repro.dynamic import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    DynamicGraph,
    Mutation,
)
from repro.errors import InvalidGraphError
from repro.graph.graph import Graph


def square():
    # 0-1-2-3-0 cycle with a chord (0, 2).
    return Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])


def same_bytes(left: Graph, right: Graph) -> bool:
    return (
        left.store.labels.tobytes() == right.store.labels.tobytes()
        and left.store.offsets.tobytes() == right.store.offsets.tobytes()
        and left.store.neighbors.tobytes() == right.store.neighbors.tobytes()
    )


def test_compact_threshold_must_be_positive():
    with pytest.raises(ValueError):
        DynamicGraph(square(), compact_threshold=0)
    with pytest.raises(ValueError):
        DynamicGraph(square(), compact_threshold=-0.5)
    # None disables auto-compaction but is a valid configuration.
    assert DynamicGraph(square(), compact_threshold=None).epoch == 0


def test_add_edge_bumps_epoch_and_reports_delta():
    dyn = DynamicGraph(square())
    delta = dyn.add_edge(1, 3)
    assert dyn.epoch == 1
    assert delta.epoch == 1
    assert delta.added_edges == ((1, 3),)
    assert delta.removed_edges == ()
    assert delta.touched == frozenset({1, 3})
    assert dyn.has_edge(1, 3) and dyn.has_edge(3, 1)
    assert dyn.num_edges == 6


def test_noop_ops_are_tolerated_and_do_not_bump_the_epoch():
    dyn = DynamicGraph(square())
    before = dyn.snapshot()
    delta = dyn.apply(
        [Mutation(ADD_EDGE, 0, 1), Mutation(REMOVE_EDGE, 1, 3)]
    )  # edge present / edge absent: both no-ops
    assert delta.empty
    assert delta.epoch == 0 and dyn.epoch == 0
    # The cached snapshot survives an all-no-op batch untouched.
    assert dyn.snapshot() is before


def test_batch_applies_atomically_with_one_epoch_bump():
    dyn = DynamicGraph(square())
    delta = dyn.apply(
        [
            Mutation(REMOVE_EDGE, 0, 2),
            Mutation(ADD_VERTEX, 2),
            Mutation(ADD_EDGE, 1, 4),
        ]
    )
    assert dyn.epoch == 1
    assert delta.removed_edges == ((0, 2),)
    assert delta.added_vertices == ((4, 2),)
    assert delta.added_edges == ((1, 4),)
    assert delta.touched == frozenset({0, 1, 2, 4})
    assert dyn.num_vertices == 5
    assert dyn.labels_list() == [0, 1, 0, 1, 2]


def test_ops_within_a_batch_see_earlier_ops():
    dyn = DynamicGraph(square())
    # add_vertex then an edge onto the id it just created.
    dyn.apply([Mutation(ADD_VERTEX, 0), Mutation(ADD_EDGE, 4, 0)])
    assert dyn.has_edge(4, 0)
    # add then remove the same edge in one batch: net no-op edge-wise,
    # but the batch still reports both sides and bumps the epoch once.
    delta = dyn.apply([Mutation(ADD_EDGE, 1, 3), Mutation(REMOVE_EDGE, 1, 3)])
    assert delta.added_edges == ((1, 3),) and delta.removed_edges == ((1, 3),)
    assert not dyn.has_edge(1, 3)
    assert dyn.epoch == 2


@pytest.mark.parametrize(
    "batch",
    [
        [Mutation(ADD_EDGE, 1, 1)],  # self loop
        [Mutation(REMOVE_EDGE, 2, 2)],  # self loop
        [Mutation(ADD_EDGE, 0, 9)],  # out of range
        [Mutation(REMOVE_EDGE, -1, 2)],  # negative endpoint
        [Mutation(ADD_VERTEX, -3)],  # negative label
    ],
)
def test_invalid_mutations_raise(batch):
    dyn = DynamicGraph(square())
    with pytest.raises(InvalidGraphError):
        dyn.apply(batch)


def test_add_vertex_returns_consecutive_dense_ids():
    dyn = DynamicGraph(square())
    assert dyn.add_vertex(7) == 4
    assert dyn.add_vertex(8) == 5
    assert dyn.num_vertices == 6
    assert dyn.label(4) == 7 and dyn.label(5) == 8
    assert dyn.degree(4) == 0 and dyn.neighbors(4) == []


def test_overlay_cancellation_readd_and_unremove():
    dyn = DynamicGraph(square())
    # Removing a base edge then re-adding it cancels the removal record.
    dyn.remove_edge(0, 2)
    assert dyn.overlay_size == 1
    dyn.add_edge(2, 0)
    assert dyn.overlay_size == 0
    assert dyn.has_edge(0, 2)
    # Adding a new edge then removing it cancels the insertion record.
    dyn.add_edge(1, 3)
    assert dyn.overlay_size == 1
    dyn.remove_edge(3, 1)
    assert dyn.overlay_size == 0
    assert not dyn.has_edge(1, 3)
    assert dyn.num_edges == square().num_edges
    assert same_bytes(dyn.snapshot(), square())


def test_reads_through_the_overlay_match_a_rebuild():
    dyn = DynamicGraph(square())
    dyn.apply(
        [
            Mutation(REMOVE_EDGE, 1, 2),
            Mutation(ADD_VERTEX, 1),
            Mutation(ADD_EDGE, 2, 4),
            Mutation(ADD_EDGE, 0, 4),
        ]
    )
    rebuilt = Graph(labels=dyn.labels_list(), edges=list(dyn.edges()))
    assert dyn.num_vertices == rebuilt.num_vertices
    assert dyn.num_edges == rebuilt.num_edges
    for v in range(dyn.num_vertices):
        assert dyn.degree(v) == rebuilt.degree(v)
        assert dyn.neighbors(v) == rebuilt.neighbors(v).tolist()
        assert dyn.nlf(v) == rebuilt.nlf(v)
    assert sorted(dyn.edges()) == sorted(rebuilt.edges())
    assert same_bytes(dyn.snapshot(), rebuilt)


def test_snapshot_is_cached_per_epoch():
    dyn = DynamicGraph(square())
    first = dyn.snapshot()
    assert dyn.snapshot() is first
    dyn.add_edge(1, 3)
    second = dyn.snapshot()
    assert second is not first
    assert dyn.snapshot() is second


def test_versioned_snapshot_pairs_epoch_with_view():
    dyn = DynamicGraph(square())
    epoch, snap = dyn.versioned_snapshot()
    assert epoch == 0 and snap is dyn.snapshot()
    dyn.add_edge(1, 3)
    epoch, snap = dyn.versioned_snapshot()
    assert epoch == 1
    assert snap.has_edge(1, 3)


def test_manual_compact_preserves_epoch_and_graph():
    dyn = DynamicGraph(square())
    dyn.apply([Mutation(REMOVE_EDGE, 0, 2), Mutation(ADD_EDGE, 1, 3)])
    view = dyn.snapshot()
    epoch = dyn.epoch
    base = dyn.compact()
    assert dyn.epoch == epoch
    assert dyn.overlay_size == 0
    assert dyn.compactions == 1
    assert base is dyn.base
    assert same_bytes(dyn.base, view)
    assert same_bytes(dyn.snapshot(), view)


def test_auto_compaction_past_the_op_floor():
    # A sparse base: the floor is max(64, 0.25 * |E|) = 64 ops.
    n = 70
    base = Graph(labels=[0] * n, edges=[(i, i + 1) for i in range(n - 1)])
    dyn = DynamicGraph(base)
    batch = [
        Mutation(ADD_EDGE, i, j)
        for i in range(n)
        for j in range(i + 2, n, 17)
    ][:65]
    assert len(batch) == 65  # strictly past the 64-op floor
    dyn.apply(batch)
    assert dyn.compactions == 1
    assert dyn.overlay_size == 0
    assert dyn.epoch == 1
    assert dyn.base.num_edges == base.num_edges + 65
    # With compaction disabled the same batch leaves the overlay alone.
    manual = DynamicGraph(base, compact_threshold=None)
    manual.apply(batch)
    assert manual.compactions == 0
    assert manual.overlay_size == 65
    assert same_bytes(manual.snapshot(), dyn.snapshot())

"""Unit tests for mutation support in the session and serving tiers.

:class:`~repro.core.session.MatchSession` over a dynamic graph
(``mutate``/``ingest``/``subscribe``), :class:`MatchService.mutate`
with its per-tenant fan-out, epoch-stamped responses, and the wire
protocol's ``mutate`` op.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.session import MatchSession, MutationOutcome
from repro.dynamic import DynamicGraph, Mutation
from repro.errors import ConfigurationError, UnknownGraphError
from repro.graph.graph import Graph
from repro.serve import MatchService
from repro.serve.server import MatchServer


def triangle():
    return Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])


def host():
    # Triangles (0, 1, 2) and (3, 4, 5); vertex 6 (label 1) dangles off 2.
    return Graph(
        labels=[0, 1, 2, 0, 1, 2, 1],
        edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 6)],
    )


# ----------------------------------------------------------------------
# MatchSession
# ----------------------------------------------------------------------


class TestSessionMutation:
    def test_static_sessions_reject_the_dynamic_surface(self):
        session = MatchSession(host())
        try:
            with pytest.raises(ConfigurationError, match="immutable"):
                session.mutate([("add_edge", 0, 4)])
            with pytest.raises(ConfigurationError, match="immutable"):
                session.subscribe(triangle())
        finally:
            session.close()

    def test_mutate_then_match_sees_the_new_epoch(self):
        dyn = DynamicGraph(host())
        session = MatchSession(dyn, algorithm="GQL")
        try:
            before = session.match(triangle())
            assert before.num_matches == 2
            assert before.metrics.counters["session.data_epoch"] == 0

            outcome = session.mutate([("add_edge", 6, 0)])
            assert isinstance(outcome, MutationOutcome)
            assert outcome.epoch == 1
            assert outcome.delta.added_edges == ((0, 6),)

            after = session.match(triangle())
            assert after.num_matches == 3
            assert after.metrics.counters["session.data_epoch"] == 1
            assert session.metrics.counters["session.mutations"] == 1
            assert session.metrics.counters["session.mutated_edges"] == 1
        finally:
            session.close()

    def test_mutate_accepts_mutation_objects_and_op_tuples(self):
        session = MatchSession(DynamicGraph(host()))
        try:
            outcome = session.mutate(
                [Mutation("add_vertex", 2), ("add_edge", 6, 7)]
            )
            assert outcome.delta.added_vertices == ((7, 2),)
            assert outcome.delta.added_edges == ((6, 7),)
        finally:
            session.close()

    def test_mutation_outcome_carries_subscription_updates(self):
        dyn = DynamicGraph(host())
        session = MatchSession(dyn)
        try:
            sub = session.subscribe(triangle())
            assert session.subscriptions == (sub,)
            assert sub.matches() == [(0, 1, 2), (3, 4, 5)]

            outcome = session.mutate([("add_edge", 6, 0)])
            assert len(outcome.updates) == 1
            assert outcome.updates[0].added == ((0, 6, 2),)
            assert sub.num_matches == 3

            session.unsubscribe(sub)
            outcome = session.mutate([("remove_edge", 6, 0)])
            assert outcome.updates == ()
            assert sub.num_matches == 3  # unsubscribed: no longer maintained
        finally:
            session.close()

    def test_ingest_folds_an_externally_applied_delta(self):
        dyn = DynamicGraph(host())
        session = MatchSession(dyn)
        try:
            sub = session.subscribe(triangle())
            delta = dyn.add_edge(6, 0)  # applied outside the session
            outcome = session.ingest(delta)
            assert outcome.epoch == 1
            assert outcome.updates[0].added == ((0, 6, 2),)
            # Idempotent per delta: a replay is a no-op for subscribers.
            assert session.ingest(delta).updates[0].empty
            assert sub.num_matches == 3
            assert session.match(triangle()).num_matches == 3
        finally:
            session.close()


# ----------------------------------------------------------------------
# MatchService
# ----------------------------------------------------------------------


@pytest.fixture
def service():
    service = MatchService(workers=2)
    service.add_graph("static", host())
    service.add_graph("live", host(), dynamic=True)
    yield service
    service.close()


class TestServiceMutation:
    def test_mutate_requires_a_known_dynamic_graph(self, service):
        with pytest.raises(UnknownGraphError):
            service.mutate("nope", [("add_edge", 0, 4)])
        with pytest.raises(ConfigurationError, match="dynamic=True"):
            service.mutate("static", [("add_edge", 0, 4)])

    def test_mutate_advances_the_epoch_and_responses_carry_it(self, service):
        first = service.match(triangle(), graph="live", tenant="a")
        assert first.epoch == 0
        assert first.result.num_matches == 2

        applied = service.mutate("live", [("add_edge", 6, 0)])
        assert applied.graph == "live"
        assert applied.epoch == 1
        assert applied.delta.added_edges == ((0, 6),)

        second = service.match(triangle(), graph="live", tenant="a")
        assert second.epoch == 1
        assert second.result.num_matches == 3
        assert service.metrics.counters["serve.mutations"] == 1
        assert service.metrics.counters["serve.mutated_edges"] == 1

    def test_static_graph_responses_have_no_epoch(self, service):
        response = service.match(triangle(), graph="static", tenant="a")
        assert response.epoch is None

    def test_mutate_fans_out_to_subscribed_tenants_only(self, service):
        sub = service.session_for("alice", "live").subscribe(triangle())
        service.session_for("bob", "live")  # session, but no subscription

        applied = service.mutate("live", [("add_edge", 6, 0)])
        assert set(applied.updates) == {"alice"}
        assert applied.updates["alice"][0].added == ((0, 6, 2),)
        assert sub.num_matches == 3
        # Both tenants read the post-batch snapshot.
        for tenant in ("alice", "bob"):
            response = service.match(triangle(), graph="live", tenant=tenant)
            assert response.epoch == 1
            assert response.result.num_matches == 3


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestServerMutateOp:
    def dispatch(self, service, payload):
        server = MatchServer(service, port=0)
        return asyncio.run(server._dispatch(json.dumps(payload)))

    def test_mutate_op_round_trip(self, service):
        response = self.dispatch(
            service,
            {
                "op": "mutate",
                "id": 7,
                "graph": "live",
                "mutations": [["add_edge", 6, 0], ["add_vertex", 1]],
            },
        )
        assert response == {
            "ok": True,
            "graph": "live",
            "epoch": 1,
            "added_edges": 1,
            "removed_edges": 0,
            "added_vertices": 1,
            "id": 7,
        }

    def test_mutate_op_requires_a_mutations_list(self, service):
        response = self.dispatch(
            service, {"op": "mutate", "graph": "live", "id": 8}
        )
        assert response["ok"] is False
        assert "mutations" in response["error"]
        assert response["code"] == "GraphFormatError"

    def test_mutate_op_surfaces_immutable_graph_errors(self, service):
        response = self.dispatch(
            service,
            {"op": "mutate", "graph": "static", "mutations": [["add_edge", 0, 4]]},
        )
        assert response["ok"] is False

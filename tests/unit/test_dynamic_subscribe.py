"""Unit tests for :class:`repro.dynamic.subscribe.Subscription`.

Exact embedding deltas on hand-built scenarios: additions discovered
through new edges, removals through deleted edges, idempotent stale
deltas, and the stored-set safety cap.
"""

import pytest

from repro.dynamic import (
    ADD_EDGE,
    ADD_VERTEX,
    DynamicGraph,
    Mutation,
    Subscription,
)
from repro.errors import InvalidQueryError
from repro.graph.graph import Graph


def triangle():
    return Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])


def host():
    # Triangles (0, 1, 2) and (3, 4, 5); vertex 6 (label 1) dangles off 2.
    return Graph(
        labels=[0, 1, 2, 0, 1, 2, 1],
        edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 6)],
    )


def test_query_validation():
    dyn = DynamicGraph(host())
    tiny = Graph(labels=[0, 1], edges=[(0, 1)])
    with pytest.raises(InvalidQueryError):
        Subscription(tiny, dyn)
    disconnected = Graph(labels=[0, 1, 2, 0], edges=[(0, 1), (2, 3)])
    with pytest.raises(InvalidQueryError):
        Subscription(disconnected, dyn)


def test_initial_matches_and_views():
    sub = Subscription(triangle(), DynamicGraph(host()))
    assert sub.matches() == [(0, 1, 2), (3, 4, 5)]
    assert sub.num_matches == 2
    assert sub.mappings() == [
        {0: 0, 1: 1, 2: 2},
        {0: 3, 1: 4, 2: 5},
    ]
    assert sub.epoch == 0


def test_added_edge_reports_the_new_embeddings_exactly():
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn)
    # 6-0 closes exactly one new triangle: (0, 6, 2).
    update = sub.on_delta(dyn.add_edge(6, 0))
    assert update.epoch == 1
    assert update.added == ((0, 6, 2),)
    assert update.removed == ()
    assert sub.matches() == [(0, 1, 2), (0, 6, 2), (3, 4, 5)]


def test_removed_edge_reports_the_dead_embeddings_exactly():
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn)
    update = sub.on_delta(dyn.remove_edge(4, 5))
    assert update.added == ()
    assert update.removed == ((3, 4, 5),)
    assert sub.matches() == [(0, 1, 2)]


def test_mixed_batch_reports_both_directions():
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn)
    delta = dyn.apply(
        [Mutation("remove_edge", 0, 1), Mutation(ADD_EDGE, 6, 0)]
    )
    update = sub.on_delta(delta)
    assert update.removed == ((0, 1, 2),)
    assert update.added == ((0, 6, 2),)
    assert sub.matches() == [(0, 6, 2), (3, 4, 5)]


def test_planted_vertices_join_the_standing_result():
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn)
    delta = dyn.apply(
        [
            Mutation(ADD_VERTEX, 0),   # id 7
            Mutation(ADD_EDGE, 7, 4),
            Mutation(ADD_EDGE, 7, 5),
        ]
    )
    update = sub.on_delta(delta)
    assert update.added == ((7, 4, 5),)
    assert (7, 4, 5) in sub.matches()


def test_stale_and_empty_deltas_are_noops():
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn)
    delta = dyn.add_edge(6, 0)
    first = sub.on_delta(delta)
    assert not first.empty
    replay = sub.on_delta(delta)  # at the subscription's epoch: no-op
    assert replay.empty and replay.epoch == sub.epoch
    assert sub.matches() == [(0, 1, 2), (0, 6, 2), (3, 4, 5)]
    # A subscription created after a batch starts current.
    late = Subscription(triangle(), dyn)
    assert late.on_delta(delta).empty
    assert late.matches() == sub.matches()


def test_match_limit_guards_construction_and_growth():
    with pytest.raises(InvalidQueryError, match="match_limit"):
        Subscription(triangle(), DynamicGraph(host()), match_limit=1)
    dyn = DynamicGraph(host())
    sub = Subscription(triangle(), dyn, match_limit=2)
    with pytest.raises(InvalidQueryError, match="match_limit"):
        sub.on_delta(dyn.add_edge(6, 0))

"""Edge-case tests across modules (hardening beyond the happy paths)."""

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.glasgow import GlasgowSolver
from repro.graph import Graph
from repro.study.runner import RunSummary


class TestGlasgowHallCheck:
    def test_pigeonhole_detected(self):
        """Three variables sharing a two-value domain cannot be all-different;
        forward checking alone would miss it, the Hall check must not."""
        # Query: path of three same-label vertices; data: only two
        # same-label vertices exist that interconnect.
        query = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        data = Graph(labels=[0, 0], edges=[(0, 1)])
        solver = GlasgowSolver(query, data)
        result = solver.solve()
        assert result.num_matches == 0

    def test_halls_check_direct(self):
        query = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        data = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        solver = GlasgowSolver(query, data)
        solver._assignment = [-1, -1, -1]
        # Domains: three variables, union of two values -> infeasible.
        assert not solver._halls_check([0b11, 0b11, 0b11])
        # Three values across three variables -> feasible.
        assert solver._halls_check([0b111, 0b11, 0b100])


class TestRunSummaryEdges:
    def test_empty_summary(self):
        s = RunSummary(
            algorithm="X", dataset_key="d", query_set_label="q", time_limit=1.0
        )
        assert s.num_queries == 0
        assert s.avg_enumeration_ms == 0.0
        assert s.std_enumeration_ms == 0.0
        assert s.avg_candidates is None
        assert s.avg_matches_solved == 0.0
        assert s.peak_memory_bytes == 0
        assert sum(s.categories().values()) == 0

    def test_single_record_std_zero(self):
        from repro.study.runner import QueryRecord

        s = RunSummary(
            algorithm="X", dataset_key="d", query_set_label="q", time_limit=1.0
        )
        s.records.append(
            QueryRecord(
                query_index=0,
                preprocessing_ms=1.0,
                enumeration_ms=2.0,
                num_matches=3,
                solved=True,
                candidate_average=4.0,
                memory_bytes=5,
                recursion_calls=6,
            )
        )
        assert s.std_enumeration_ms == 0.0
        assert s.avg_total_ms == 3.0


class TestEngineEdges:
    def test_match_limit_one_stops_immediately(self):
        from repro import match

        result = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL-opt", match_limit=1)
        assert result.num_matches == 1
        assert result.solved

    def test_zero_store_limit_counts_everything(self):
        from repro import match

        result = match(
            PAPER_QUERY, PAPER_DATA, algorithm="GQL-opt",
            match_limit=None, store_limit=0,
        )
        assert result.num_matches == 2
        assert result.embeddings == []

    def test_unmatchable_label_short_circuit(self):
        from repro import match

        query = Graph(labels=[99, 99, 99], edges=[(0, 1), (1, 2)])
        result = match(query, PAPER_DATA, algorithm="CECI")
        assert result.num_matches == 0
        assert result.stats.recursion_calls == 0  # empty C(u) fast path


class TestOrderingTieBreaks:
    def test_quicksi_deterministic_under_full_ties(self):
        from repro.ordering import QuickSIOrdering

        # All labels identical: every edge has the same weight.
        query = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        data = Graph(labels=[0] * 6, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        a = QuickSIOrdering().order(query, data)
        b = QuickSIOrdering().order(query, data)
        assert a == b

    def test_vf2pp_deterministic_under_full_ties(self):
        from repro.ordering import VF2ppOrdering

        query = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert VF2ppOrdering().order(query, PAPER_DATA) == VF2ppOrdering().order(
            query, PAPER_DATA
        )


class TestWorkloadLadders:
    def test_hu_wn_use_small_ladder(self):
        from repro.study import default_query_sizes

        assert max(default_query_sizes("hu")) < max(default_query_sizes("ye"))

"""Unit tests for the backtracking engine (limits, stats, modes)."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.enumeration import (
    BacktrackingEngine,
    CandidateScanLC,
    IntersectionLC,
    NeighborScanLC,
)
from repro.filtering import AuxiliaryStructure, CandidateSets, GraphQLFilter
from repro.graph import Graph, rmat_graph, extract_query
from repro.ordering import GraphQLOrdering


@pytest.fixture(scope="module")
def pipeline():
    cand = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
    aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, cand, scope="all")
    order = GraphQLOrdering().order(PAPER_QUERY, PAPER_DATA, cand)
    return cand, aux, order


class TestBasicRun:
    def test_finds_both_matches(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        assert out.solved
        assert out.num_matches == 2
        assert set(out.embeddings) == PAPER_MATCHES

    def test_embeddings_indexed_by_query_vertex(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        for emb in out.embeddings:
            for u, v in enumerate(emb):
                assert PAPER_DATA.label(v) == PAPER_QUERY.label(u)

    def test_empty_candidate_set_short_circuits(self, pipeline):
        _, aux, order = pipeline
        empty = CandidateSets(PAPER_QUERY, [[0], [], [3, 5], [10]])
        out = BacktrackingEngine(CandidateScanLC()).run(
            PAPER_QUERY, PAPER_DATA, empty, None, order
        )
        assert out.num_matches == 0
        assert out.solved
        assert out.stats.recursion_calls == 0

    def test_static_mode_requires_order(self, pipeline):
        cand, aux, _ = pipeline
        with pytest.raises(ValueError, match="requires a matching order"):
            BacktrackingEngine(IntersectionLC()).run(
                PAPER_QUERY, PAPER_DATA, cand, aux, None
            )


class TestLimits:
    def test_match_limit(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, match_limit=1
        )
        assert out.num_matches == 1
        assert out.solved  # Hitting the cap is not an unsolved query.

    def test_store_limit(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, store_limit=1
        )
        assert out.num_matches == 2
        assert len(out.embeddings) == 1

    def test_time_limit_kills_heavy_query(self):
        # A near-unlabeled dense graph with a large query explodes; the
        # deadline must cut it off and mark it unsolved.
        data = rmat_graph(400, 16.0, 1, seed=3, clustering=0.3)
        query = extract_query(data, 12, seed=1)
        cand = GraphQLFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        order = GraphQLOrdering().order(query, data, cand)
        out = BacktrackingEngine(IntersectionLC()).run(
            query, data, cand, aux, order,
            match_limit=None, time_limit=0.05,
        )
        assert not out.solved
        assert out.elapsed < 2.0


class TestStats:
    def test_counters_populated(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        assert out.stats.recursion_calls >= 4
        assert out.stats.candidates_scanned >= 2

    def test_conflicts_counted(self):
        # Query: path A-B-A on a data path A-B-A where both A's candidates
        # overlap -> injectivity conflicts occur.
        data = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        cand = GraphQLFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        order = [1, 0, 2]
        out = BacktrackingEngine(IntersectionLC()).run(
            query, data, cand, aux, order
        )
        assert out.num_matches == 2
        assert out.stats.conflicts > 0


class TestTreeParent:
    def test_designated_parent_respected(self, pipeline):
        from repro.filtering import CFLFilter
        from repro.enumeration import TreeAdjacencyLC

        cand = CFLFilter().run(PAPER_QUERY, PAPER_DATA)
        tree = CFLFilter.build_tree(PAPER_QUERY, PAPER_DATA)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, cand, scope="tree", tree=tree
        )
        # Order [0, 2, 1, 3]: u3's φ-earliest backward neighbor is u2, but
        # its tree parent is u1 — Algorithm 4 must use u1's table.
        out = BacktrackingEngine(TreeAdjacencyLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, [0, 2, 1, 3],
            tree_parent=tree.parent,
        )
        assert set(out.embeddings) == PAPER_MATCHES


class TestNeighborScanWithoutCandidates:
    def test_direct_enumeration(self):
        out = BacktrackingEngine(NeighborScanLC()).run(
            PAPER_QUERY, PAPER_DATA, None, None, [0, 1, 2, 3]
        )
        assert set(out.embeddings) == PAPER_MATCHES


class TestDeadlineExpiry:
    """The budget kill must leave a usable, fully-accounted result."""

    @pytest.fixture(scope="class")
    def heavy(self):
        # Near-unlabeled dense graph: the search tree explodes, so a tiny
        # budget reliably expires mid-enumeration.
        data = rmat_graph(400, 16.0, 1, seed=3, clustering=0.3)
        query = extract_query(data, 12, seed=1)
        return query, data

    def test_unsolved_outcome_keeps_partial_counters(self, heavy):
        query, data = heavy
        cand = GraphQLFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        order = GraphQLOrdering().order(query, data, cand)
        out = BacktrackingEngine(IntersectionLC()).run(
            query, data, cand, aux, order,
            match_limit=None, time_limit=0.05,
        )
        assert not out.solved
        # Work done before the kill stays visible.
        assert out.stats.recursion_calls > 0
        assert out.stats.candidates_scanned > 0
        assert out.elapsed > 0.0

    def test_budget_exceeded_never_escapes_match(self, heavy):
        from repro.core import match

        query, data = heavy
        result = match(
            query, data, algorithm="GQL",
            match_limit=None, time_limit=0.05,
        )  # must not raise BudgetExceeded
        assert not result.solved

    def test_unsolved_match_records_elapsed_per_phase(self, heavy):
        from repro.core import match

        query, data = heavy
        result = match(
            query, data, algorithm="GQL",
            match_limit=None, time_limit=0.05,
        )
        assert not result.solved
        # Split timings survive the kill...
        assert result.preprocessing_seconds > 0.0
        assert result.enumeration_seconds > 0.0
        # ...and so do the per-phase metrics entries.
        phases = result.metrics.phase_seconds
        assert set(phases) == {"filter", "order", "enumerate"}
        assert all(seconds > 0.0 for seconds in phases.values())

    def test_unsolved_match_keeps_partial_metrics(self, heavy):
        from repro.core import match

        query, data = heavy
        result = match(
            query, data, algorithm="GQL",
            match_limit=None, time_limit=0.05,
        )
        counters = result.metrics.counters
        assert counters["enumerate.recursion_calls"] > 0
        assert counters["filter.candidates_final"] > 0
        assert result.metrics.filter_stages


class TestAdaptiveLCReuse:
    """The adaptive selector memoizes ComputeLC per (vertex, backward
    mapping) within a node — re-selection must not recompute."""

    def test_reuse_counter_populated(self):
        from repro.core import match

        data = rmat_graph(200, 6.0, 2, seed=5, clustering=0.2)
        query = extract_query(data, 6, seed=2)
        result = match(query, data, algorithm="DP", match_limit=500)
        counters = result.metrics.counters
        # Every search node beyond the trivial ones reconsiders the same
        # unmapped vertices, so reuse must dominate on any real query.
        assert counters["enumerate.adaptive_lc_reused"] > 0

    def test_reuse_does_not_change_results(self):
        from repro.core import match

        data = rmat_graph(200, 6.0, 2, seed=5, clustering=0.2)
        query = extract_query(data, 6, seed=2)
        baseline = match(query, data, algorithm="GQL", match_limit=None)
        adaptive = match(query, data, algorithm="DP", match_limit=None)
        # DP's adaptive order enumerates in a different sequence, so only
        # the total is comparable across algorithms.
        assert adaptive.num_matches == baseline.num_matches


class TestEmbeddingTypes:
    """Embeddings convert once, at the end — and to plain ints."""

    def test_rows_compare_and_repr_as_ints(self, pipeline):
        cand, aux, order = pipeline
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        for emb in out.embeddings:
            assert all(type(v) is int for v in emb)
            assert "np" not in repr(emb)
        assert set(out.embeddings) == PAPER_MATCHES

"""The engine registry after the recursive engine's retirement.

The iterative frame machine is the only engine in the default registry;
the recursive backtracker survives one more release strictly as an
opt-in differential baseline (``REPRO_ENGINE=recursive`` or
``enable_recursive_baseline()``). These tests exercise the registry in
isolation — other suites may have already opted in process-wide, so the
pristine state is recreated with ``monkeypatch.delitem``.
"""

import pytest

import repro.enumeration.engines as engines_module
from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.engines import (
    DEFAULT_ENGINE,
    available_engines,
    enable_recursive_baseline,
    resolve_engine_name,
)
from repro.errors import ConfigurationError


@pytest.fixture
def retired(monkeypatch):
    """Registry as it looks before any opt-in."""
    monkeypatch.delitem(engines_module._FACTORIES, "recursive", raising=False)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


class TestRetiredDefaultRegistry:
    def test_default_is_iterative(self, retired):
        assert DEFAULT_ENGINE == "iterative"
        assert available_engines() == ["iterative"]
        assert resolve_engine_name(None) == "iterative"

    def test_recursive_without_opt_in_is_unknown(self, retired):
        with pytest.raises(ConfigurationError, match="recursive"):
            resolve_engine_name("recursive")

    def test_unknown_engine_message_names_the_opt_in(self, retired):
        with pytest.raises(ConfigurationError, match="enable_recursive_baseline"):
            resolve_engine_name("bogus")


class TestOptIn:
    def test_enable_recursive_baseline_registers(self, retired):
        enable_recursive_baseline()
        assert available_engines() == ["iterative", "recursive"]
        assert resolve_engine_name("recursive") == "recursive"

    def test_enable_is_idempotent_and_preserves_overrides(self, retired):
        sentinel = object()
        engines_module._FACTORIES["recursive"] = sentinel
        enable_recursive_baseline()
        assert engines_module._FACTORIES["recursive"] is sentinel

    def test_env_var_opt_in_via_default_resolution(self, retired, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "recursive")
        assert resolve_engine_name(None) == "recursive"
        assert "recursive" in available_engines()

    def test_env_var_opt_in_via_explicit_name(self, retired, monkeypatch):
        # CI parity jobs pass --engine recursive with the env set; the
        # explicit name must honor the opt-in too.
        monkeypatch.setenv("REPRO_ENGINE", "recursive")
        assert resolve_engine_name("recursive") == "recursive"

    def test_opt_in_factory_is_the_backtracker(self, retired):
        enable_recursive_baseline()
        engine = engines_module.create_engine("recursive", None)
        assert isinstance(engine, BacktrackingEngine)

"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceeded,
    ConfigurationError,
    GraphFormatError,
    InvalidGraphError,
    InvalidQueryError,
    ReproError,
)

ALL_ERRORS = [
    GraphFormatError,
    InvalidGraphError,
    InvalidQueryError,
    ConfigurationError,
    BudgetExceeded,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)
    # ...but not a catch-all for programming errors.
    assert not issubclass(KeyError, ReproError)


def test_budget_exceeded_never_escapes_public_api():
    """BudgetExceeded is an internal signal; match() reports unsolved."""
    from repro import match
    from repro.graph import rmat_graph, extract_query

    data = rmat_graph(400, 16.0, 1, seed=3, clustering=0.3)
    query = extract_query(data, 12, seed=1)
    result = match(
        query, data, algorithm="RI-opt", match_limit=None, time_limit=0.05
    )
    assert not result.solved  # reported, not raised

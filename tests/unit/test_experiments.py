"""Unit tests for the programmatic experiment API."""

import pytest

from repro.filtering import DPisoFilter, LDFFilter
from repro.graph import rmat_graph, generate_query_set
from repro.study import (
    compare_algorithms,
    compare_filters,
    default_study_filters,
    order_spectrum,
)


@pytest.fixture(scope="module")
def instance():
    data = rmat_graph(400, 8.0, 4, seed=61, clustering=0.3)
    queries = generate_query_set(data, 6, 3, seed=9)
    return data, queries


class TestCompareFilters:
    def test_default_lineup(self, instance):
        data, queries = instance
        reports = compare_filters(data, queries)
        names = [r.filter_name for r in reports]
        assert names == ["LDF", "GQL", "CFL", "CECI", "DP", "STEADY"]
        for r in reports:
            assert r.num_queries == 3
            assert r.avg_candidates >= 0
            assert r.avg_time_ms >= 0

    def test_refined_filters_prune_more_than_ldf(self, instance):
        data, queries = instance
        reports = {r.filter_name: r for r in compare_filters(data, queries)}
        assert reports["DP"].avg_candidates <= reports["LDF"].avg_candidates
        assert reports["STEADY"].avg_candidates <= reports["DP"].avg_candidates + 1e-9

    def test_custom_filters(self, instance):
        data, queries = instance
        reports = compare_filters(
            data, queries, filters=[LDFFilter(), DPisoFilter(refinement_phases=1)]
        )
        assert len(reports) == 2

    def test_default_study_filters_fresh_instances(self):
        a = default_study_filters()
        b = default_study_filters()
        assert a[0] is not b[0]


class TestCompareAlgorithms:
    def test_sorted_by_total(self, instance):
        data, queries = instance
        summaries = compare_algorithms(
            data, queries, ["GQL-opt", "RI-opt", "GLW"], time_limit=5.0
        )
        totals = [s.avg_total_ms for s in summaries]
        assert totals == sorted(totals)
        assert {s.algorithm for s in summaries} == {"GQL-opt", "RI-opt", "GLW"}

    def test_counts_agree(self, instance):
        data, queries = instance
        summaries = compare_algorithms(
            data, queries, ["GQL-opt", "CECI"], match_limit=None, time_limit=10.0
        )
        by_name = {s.algorithm: s for s in summaries}
        for a, b in zip(
            by_name["GQL-opt"].records, by_name["CECI"].records
        ):
            assert a.num_matches == b.num_matches


class TestOrderSpectrum:
    def test_report_shape(self, instance):
        data, queries = instance
        report = order_spectrum(
            queries[0], data, num_orders=10, seed=3, time_limit=5.0
        )
        assert report.timeouts >= 0
        assert report.sampled_ms == sorted(report.sampled_ms)
        assert report.best_ms is not None
        assert report.worst_ms >= report.best_ms
        assert report.median_ms is not None
        assert report.gql_ms is not None and report.ri_ms is not None

    def test_speedup_over(self, instance):
        data, queries = instance
        report = order_spectrum(queries[0], data, num_orders=5, seed=4, time_limit=5.0)
        speedup = report.speedup_over(report.gql_ms)
        assert speedup is not None and speedup > 0
        assert report.speedup_over(None) is None

    def test_deterministic_sampling(self, instance):
        data, queries = instance
        a = order_spectrum(queries[1], data, num_orders=5, seed=7, time_limit=5.0)
        b = order_spectrum(queries[1], data, num_orders=5, seed=7, time_limit=5.0)
        assert len(a.sampled_ms) == len(b.sampled_ms)

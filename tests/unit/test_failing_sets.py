"""Unit tests for the failing-sets pruning (Section 3.4)."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.enumeration import BacktrackingEngine, IntersectionLC
from repro.filtering import AuxiliaryStructure, GraphQLFilter
from repro.graph import Graph, rmat_graph, extract_query
from repro.ordering import GraphQLOrdering, RIOrdering


def run(query, data, ordering, failing_sets, **kwargs):
    cand = GraphQLFilter().run(query, data)
    aux = AuxiliaryStructure.build(query, data, cand, scope="all")
    order = ordering.order(query, data, cand)
    engine = BacktrackingEngine(IntersectionLC(), use_failing_sets=failing_sets)
    return engine.run(query, data, cand, aux, order, **kwargs)


class TestCorrectness:
    def test_same_matches_on_paper_example(self):
        without = run(PAPER_QUERY, PAPER_DATA, GraphQLOrdering(), False)
        with_fs = run(PAPER_QUERY, PAPER_DATA, GraphQLOrdering(), True)
        assert set(without.embeddings) == set(with_fs.embeddings) == PAPER_MATCHES

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_same_counts_on_random_instances(self, seed):
        data = rmat_graph(300, 8.0, 3, seed=seed, clustering=0.3)
        query = extract_query(data, 7, seed=seed * 11 + 1)
        for ordering in (GraphQLOrdering(), RIOrdering()):
            without = run(query, data, ordering, False, match_limit=None)
            with_fs = run(query, data, ordering, True, match_limit=None)
            assert without.num_matches == with_fs.num_matches
            assert set(without.embeddings) == set(with_fs.embeddings)


class TestPruningHappens:
    def test_example_35_style_conflict_pruning(self):
        """The paper's Figure 6 scenario: a query vertex whose candidates
        all conflict with an earlier mapping, where the conflict does not
        involve the sibling-generating vertex — siblings are skipped."""
        # Query: u0(A)-u1(B), u0-u2(C), u1-u3(A); u2 sits between u0 and
        # the conflicting pair in the order, exactly like Figure 6's u2:
        # its alternative candidates cannot fix the downstream conflict.
        query = Graph(
            labels=[0, 1, 2, 0],
            edges=[(0, 1), (0, 2), (1, 3)],
        )
        # Data: v0 is the only A vertex reachable from v1, so u3 must
        # conflict with u0's mapping; v2/v3/v4 are interchangeable C
        # candidates for u2 whose siblings the failing set should skip.
        # LDF candidates (not GraphQL's) so the conflict is only
        # discoverable at runtime, as in the paper's example.
        data = Graph(
            labels=[0, 1, 2, 2, 2],
            edges=[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)],
        )
        from repro.filtering import LDFFilter

        cand = LDFFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        order = [0, 1, 2, 3]
        without = BacktrackingEngine(IntersectionLC(), use_failing_sets=False).run(
            query, data, cand, aux, order, match_limit=None
        )
        with_fs = BacktrackingEngine(IntersectionLC(), use_failing_sets=True).run(
            query, data, cand, aux, order, match_limit=None
        )
        assert without.num_matches == with_fs.num_matches == 0
        assert with_fs.stats.failing_set_prunes > 0
        assert with_fs.stats.recursion_calls < without.stats.recursion_calls

    def test_reduces_work_on_hard_random_instance(self):
        data = rmat_graph(500, 10.0, 2, seed=77, clustering=0.3)
        query = extract_query(data, 10, seed=5, density="sparse")
        without = run(query, data, RIOrdering(), False, match_limit=1000)
        with_fs = run(query, data, RIOrdering(), True, match_limit=1000)
        assert with_fs.num_matches == without.num_matches
        # Never more work than the unoptimized run (pruning only skips).
        assert (
            with_fs.stats.recursion_calls <= without.stats.recursion_calls
        )


class TestAdaptiveFailingSets:
    def test_dp_adaptive_with_fs_agrees(self):
        from repro.filtering import DPisoFilter
        from repro.ordering import DPisoOrdering

        data = rmat_graph(300, 8.0, 3, seed=9, clustering=0.3)
        query = extract_query(data, 7, seed=21)
        cand = DPisoFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        state = DPisoOrdering().adaptive_state(query, data, cand)
        results = []
        for fs in (False, True):
            engine = BacktrackingEngine(
                IntersectionLC(), use_failing_sets=fs, adaptive=state
            )
            out = engine.run(
                query, data, cand, aux, None, match_limit=None
            )
            results.append(set(out.embeddings))
        assert results[0] == results[1]

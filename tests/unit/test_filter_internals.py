"""Unit tests for the internal filtering primitives."""

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.filtering._common import has_candidate_neighbor, neighbor_expansion
from repro.graph import Graph
from repro.ordering.cfl import _path_suffix_counts
from repro.filtering import GraphQLFilter


class TestHasCandidateNeighbor:
    def test_present(self):
        # v0's neighbors include v4.
        assert has_candidate_neighbor(PAPER_DATA, 0, [4, 9], {4, 9})

    def test_absent(self):
        # v0 is not adjacent to v10.
        assert not has_candidate_neighbor(PAPER_DATA, 0, [10], {10})

    def test_iterates_smaller_side_same_result(self):
        # Tiny candidate list (iterate candidates) vs huge one (iterate
        # neighbors) must agree.
        big = list(range(PAPER_DATA.num_vertices))
        assert has_candidate_neighbor(PAPER_DATA, 0, [1], {1})
        assert has_candidate_neighbor(PAPER_DATA, 0, big, set(big))

    def test_empty_candidates(self):
        assert not has_candidate_neighbor(PAPER_DATA, 0, [], set())


class TestNeighborExpansion:
    def test_union_of_neighborhoods(self):
        pool = neighbor_expansion(PAPER_DATA, [0])
        assert pool == set(PAPER_DATA.neighbors(0).tolist())

    def test_multiple_seeds(self):
        pool = neighbor_expansion(PAPER_DATA, [10, 12])
        expected = set(PAPER_DATA.neighbors(10).tolist()) | set(
            PAPER_DATA.neighbors(12).tolist()
        )
        assert pool == expected

    def test_empty(self):
        assert neighbor_expansion(PAPER_DATA, []) == set()


class TestCFLPathWeights:
    def test_counts_paths_exactly(self):
        # On the paper fixture, path (u0, u1, u3) has exactly the
        # embeddings v0->{v2,v4}->C(u3): v2-v12, v4-v10, v4-v12 = 3.
        candidates = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        counts = _path_suffix_counts(PAPER_DATA, candidates, (0, 1, 3))
        assert counts[0] == 3.0
        # Suffix from u1: v2 contributes 1, v4 contributes 2.
        assert counts[1] == 3.0
        assert counts[3] == float(len(candidates[3]))

    def test_zero_when_disconnected(self):
        g = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
        q = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
        candidates = GraphQLFilter().run(q, g)
        counts = _path_suffix_counts(g, candidates, (0, 1, 2))
        assert counts[0] == 1.0  # single path embedding

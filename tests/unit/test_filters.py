"""Unit tests for every filtering method, anchored to the paper's examples."""

import pytest

from fixtures import (
    DPISO_CANDIDATES,
    GQL_LOCAL_CANDIDATES,
    PAPER_DATA,
    PAPER_MATCHES,
    PAPER_QUERY,
    REFINED_CANDIDATES,
)

from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    NLFFilter,
    SteadyFilter,
    ldf_check,
    nlf_check,
)
from repro.filtering.graphql import (
    has_semi_perfect_matching,
    is_subsequence,
    profile,
)
from repro.graph import Graph

ALL_FILTERS = [
    LDFFilter(),
    NLFFilter(),
    GraphQLFilter(),
    CFLFilter(),
    CECIFilter(),
    DPisoFilter(),
    SteadyFilter(),
]


class TestBasicChecks:
    def test_ldf_check(self):
        # v4 (label B, degree 5) passes for u1 (label B, degree 3).
        assert ldf_check(PAPER_QUERY, 1, PAPER_DATA, 4)
        # v8 has label B but degree 1 < 3.
        assert not ldf_check(PAPER_QUERY, 1, PAPER_DATA, 8)
        # Wrong label.
        assert not ldf_check(PAPER_QUERY, 1, PAPER_DATA, 0)

    def test_nlf_check(self):
        # u1's neighbors: labels {A:1, C:1, D:1}; v6 has exactly those.
        assert nlf_check(PAPER_QUERY, 1, PAPER_DATA, 6)
        # v8's only neighbor is C-labeled: misses A and D.
        assert not nlf_check(PAPER_QUERY, 1, PAPER_DATA, 8)

    def test_ldf_filter_on_paper_graphs(self):
        result = LDFFilter().run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == {0: [0], 1: [2, 4, 6], 2: [1, 3, 5], 3: [10, 12]}

    def test_nlf_subset_of_ldf(self):
        ldf = LDFFilter().run(PAPER_QUERY, PAPER_DATA)
        nlf = NLFFilter().run(PAPER_QUERY, PAPER_DATA)
        for u in PAPER_QUERY.vertices():
            assert set(nlf[u]) <= set(ldf[u])


class TestGraphQLHelpers:
    def test_profile_example(self):
        # Paper: the profile of u1 within distance 1 is ABCD.
        assert profile(PAPER_QUERY, 1) == (0, 1, 2, 3)

    def test_profile_radius_two(self):
        g = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
        assert profile(g, 0, radius=2) == (0, 1, 2)

    def test_is_subsequence(self):
        assert is_subsequence((1, 2, 2), (1, 2, 2, 3))
        assert not is_subsequence((1, 2, 2), (1, 2, 3))
        assert is_subsequence((), (1,))
        assert not is_subsequence((1,), ())

    def test_semi_perfect_matching_exists(self):
        # Two left vertices, each reaching distinct rights.
        assert has_semi_perfect_matching(2, [[0, 1], [1]], 2)

    def test_semi_perfect_matching_absent(self):
        # Both lefts compete for one right.
        assert not has_semi_perfect_matching(2, [[0], [0]], 2)

    def test_left_larger_than_right(self):
        assert not has_semi_perfect_matching(3, [[0], [1], [0]], 2)

    def test_augmenting_path_needed(self):
        # Greedy fails, augmenting succeeds: 0->a, then 1 wants a, 0 moves to b.
        assert has_semi_perfect_matching(2, [[0, 1], [0]], 2)


class TestGraphQLFilter:
    def test_local_pruning_matches_example_31(self):
        result = GraphQLFilter(refinement_rounds=0).run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == GQL_LOCAL_CANDIDATES

    def test_global_refinement_removes_v1_and_v6(self):
        result = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == REFINED_CANDIDATES

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GraphQLFilter(radius=0)
        with pytest.raises(ValueError):
            GraphQLFilter(refinement_rounds=-1)

    def test_more_rounds_never_grow_sets(self):
        one = GraphQLFilter(refinement_rounds=1).run(PAPER_QUERY, PAPER_DATA)
        three = GraphQLFilter(refinement_rounds=3).run(PAPER_QUERY, PAPER_DATA)
        for u in PAPER_QUERY.vertices():
            assert set(three[u]) <= set(one[u])


class TestCFLFilter:
    def test_matches_example_32(self):
        result = CFLFilter().run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == REFINED_CANDIDATES

    def test_tree_rooted_at_u0(self):
        tree = CFLFilter.build_tree(PAPER_QUERY, PAPER_DATA)
        assert tree.root == 0
        assert set(tree.tree_edges) == {(0, 1), (0, 2), (1, 3)}


class TestCECIFilter:
    def test_matches_example_33(self):
        result = CECIFilter().run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == REFINED_CANDIDATES


class TestDPisoFilter:
    def test_stronger_than_cfl_on_example(self):
        result = DPisoFilter().run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == DPISO_CANDIDATES

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            DPisoFilter(refinement_phases=0)

    def test_more_phases_never_grow_sets(self):
        one = DPisoFilter(refinement_phases=1).run(PAPER_QUERY, PAPER_DATA)
        five = DPisoFilter(refinement_phases=5).run(PAPER_QUERY, PAPER_DATA)
        for u in PAPER_QUERY.vertices():
            assert set(five[u]) <= set(one[u])


class TestSteadyFilter:
    def test_fixpoint_on_example(self):
        f = SteadyFilter()
        result = f.run(PAPER_QUERY, PAPER_DATA)
        assert result.as_dict() == DPISO_CANDIDATES
        assert f.last_iterations >= 2

    def test_steady_is_subset_of_every_filter(self):
        steady = SteadyFilter().run(PAPER_QUERY, PAPER_DATA)
        for filt in ALL_FILTERS:
            other = filt.run(PAPER_QUERY, PAPER_DATA)
            for u in PAPER_QUERY.vertices():
                assert set(steady[u]) <= set(other[u]), filt.name

    def test_iteration_cap(self):
        with pytest.raises(ValueError):
            SteadyFilter(max_iterations=0)


@pytest.mark.parametrize("filt", ALL_FILTERS, ids=lambda f: f.name)
class TestCompleteness:
    def test_all_match_images_survive(self, filt):
        """Definition 2.2: filters must keep every vertex used in a match."""
        result = filt.run(PAPER_QUERY, PAPER_DATA)
        for embedding in PAPER_MATCHES:
            for u, v in enumerate(embedding):
                assert result.contains(u, v), (filt.name, u, v)

    def test_candidates_pass_ldf(self, filt):
        result = filt.run(PAPER_QUERY, PAPER_DATA)
        for u in PAPER_QUERY.vertices():
            for v in result[u]:
                assert PAPER_DATA.label(v) == PAPER_QUERY.label(u)

"""Unit tests for the order-invariant query fingerprint."""

from repro.graph import Graph, query_fingerprint, vertex_signatures


def permute(graph: Graph, perm):
    """Relabel vertices: old vertex v becomes perm[v]."""
    labels = [0] * graph.num_vertices
    for v in range(graph.num_vertices):
        labels[perm[v]] = graph.label(v)
    edges = [(perm[u], perm[v]) for u, v in graph.edges()]
    return Graph(labels=labels, edges=edges)


TRIANGLE_PLUS = Graph(
    labels=[0, 1, 0, 2],
    edges=[(0, 1), (1, 2), (2, 0), (2, 3)],
)


class TestInvariance:
    def test_identical_graphs_share_fingerprint(self):
        copy = Graph(labels=[0, 1, 0, 2],
                     edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        assert query_fingerprint(TRIANGLE_PLUS) == query_fingerprint(copy)

    def test_invariant_under_vertex_relabeling(self):
        for perm in ([3, 2, 1, 0], [1, 0, 3, 2], [2, 3, 0, 1]):
            renumbered = permute(TRIANGLE_PLUS, perm)
            assert query_fingerprint(renumbered) == query_fingerprint(
                TRIANGLE_PLUS
            ), perm

    def test_invariant_under_edge_order(self):
        shuffled = Graph(labels=[0, 1, 0, 2],
                         edges=[(2, 3), (2, 0), (1, 2), (0, 1)])
        assert query_fingerprint(shuffled) == query_fingerprint(TRIANGLE_PLUS)


class TestSensitivity:
    def test_label_change_changes_fingerprint(self):
        relabeled = Graph(labels=[0, 1, 1, 2],
                          edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        assert query_fingerprint(relabeled) != query_fingerprint(TRIANGLE_PLUS)

    def test_edge_change_changes_fingerprint(self):
        rewired = Graph(labels=[0, 1, 0, 2],
                        edges=[(0, 1), (1, 2), (2, 0), (1, 3)])
        assert query_fingerprint(rewired) != query_fingerprint(TRIANGLE_PLUS)

    def test_extra_vertex_changes_fingerprint(self):
        bigger = Graph(labels=[0, 1, 0, 2, 0],
                       edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        assert query_fingerprint(bigger) != query_fingerprint(TRIANGLE_PLUS)


class TestFormat:
    def test_prefix_carries_counts(self):
        assert query_fingerprint(TRIANGLE_PLUS).startswith("q4e4-")

    def test_vertex_signatures_are_order_invariant_as_multiset(self):
        perm = [2, 0, 3, 1]
        original = sorted(vertex_signatures(TRIANGLE_PLUS))
        renumbered = sorted(vertex_signatures(permute(TRIANGLE_PLUS, perm)))
        assert original == renumbered

    def test_signature_content(self):
        sigs = vertex_signatures(TRIANGLE_PLUS)
        # Vertex 3: label 2, degree 1, one label-0 neighbor.
        assert sigs[3] == (2, 1, ((0, 1),))

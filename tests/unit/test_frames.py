"""Unit tests for the iterative frame machine (parity, pause/resume)."""

import itertools

import numpy as np
import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.enumeration import (
    BacktrackingEngine,
    CandidateScanLC,
    FrameMachine,
    IntersectionLC,
    NeighborScanLC,
    iter_matches,
)
from repro.filtering import AuxiliaryStructure, CandidateSets, GraphQLFilter
from repro.graph import extract_query, rmat_graph
from repro.ordering import GraphQLOrdering


@pytest.fixture(scope="module")
def pipeline():
    cand = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
    aux = AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, cand, scope="all")
    order = GraphQLOrdering().order(PAPER_QUERY, PAPER_DATA, cand)
    return cand, aux, order


@pytest.fixture(scope="module")
def heavy():
    # Dense graph: enough matches that a search has many leaf batches to
    # pause between (runs are always capped by match_limit below).
    data = rmat_graph(300, 8.0, 2, seed=3, clustering=0.2)
    query = extract_query(data, 5, seed=1)
    cand = GraphQLFilter().run(query, data)
    aux = AuxiliaryStructure.build(query, data, cand, scope="all")
    order = GraphQLOrdering().order(query, data, cand)
    return query, data, cand, aux, order


class TestRunParity:
    """run() is a drop-in for the recursive engine."""

    def test_paper_example(self, pipeline):
        cand, aux, order = pipeline
        out = FrameMachine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        assert out.solved
        assert out.num_matches == 2
        assert set(out.embeddings) == PAPER_MATCHES

    def test_matches_recursive_on_all_counters(self, heavy):
        query, data, cand, aux, order = heavy
        rec = BacktrackingEngine(IntersectionLC(), use_failing_sets=True).run(
            query, data, cand, aux, order, match_limit=2000
        )
        it = FrameMachine(IntersectionLC(), use_failing_sets=True).run(
            query, data, cand, aux, order, match_limit=2000
        )
        assert it.num_matches == rec.num_matches
        assert it.embeddings == rec.embeddings
        assert it.stats.recursion_calls == rec.stats.recursion_calls
        assert it.stats.candidates_scanned == rec.stats.candidates_scanned
        assert it.stats.conflicts == rec.stats.conflicts
        assert it.stats.failing_set_prunes == rec.stats.failing_set_prunes

    def test_embeddings_are_plain_ints(self, pipeline):
        cand, aux, order = pipeline
        out = FrameMachine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order
        )
        for emb in out.embeddings:
            assert all(type(v) is int for v in emb)

    def test_empty_candidate_set_short_circuits(self, pipeline):
        _, aux, order = pipeline
        empty = CandidateSets(PAPER_QUERY, [[0], [], [3, 5], [10]])
        out = FrameMachine(CandidateScanLC()).run(
            PAPER_QUERY, PAPER_DATA, empty, None, order
        )
        assert out.num_matches == 0
        assert out.solved
        assert out.stats.recursion_calls == 0

    def test_static_mode_requires_order(self, pipeline):
        cand, aux, _ = pipeline
        with pytest.raises(ValueError, match="requires a matching order"):
            FrameMachine(IntersectionLC()).run(
                PAPER_QUERY, PAPER_DATA, cand, aux, None
            )

    def test_direct_enumeration_without_candidates(self):
        out = FrameMachine(NeighborScanLC()).run(
            PAPER_QUERY, PAPER_DATA, None, None, [0, 1, 2, 3]
        )
        assert set(out.embeddings) == PAPER_MATCHES


class TestLimits:
    def test_match_limit(self, pipeline):
        cand, aux, order = pipeline
        out = FrameMachine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, match_limit=1
        )
        assert out.num_matches == 1
        assert out.solved

    def test_store_limit(self, pipeline):
        cand, aux, order = pipeline
        out = FrameMachine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, store_limit=1
        )
        assert out.num_matches == 2
        assert len(out.embeddings) == 1

    def test_time_limit_kills_heavy_query(self):
        data = rmat_graph(400, 16.0, 1, seed=3, clustering=0.3)
        query = extract_query(data, 12, seed=1)
        cand = GraphQLFilter().run(query, data)
        aux = AuxiliaryStructure.build(query, data, cand, scope="all")
        order = GraphQLOrdering().order(query, data, cand)
        out = FrameMachine(IntersectionLC()).run(
            query, data, cand, aux, order, match_limit=None, time_limit=0.05
        )
        assert not out.solved
        assert out.elapsed < 2.0
        assert out.stats.recursion_calls > 0


class TestIncremental:
    """start()/advance() with emit_rows: one leaf batch per call."""

    def test_batches_cover_all_matches(self, heavy):
        query, data, cand, aux, order = heavy
        rec = BacktrackingEngine(IntersectionLC()).run(
            query, data, cand, aux, order, match_limit=3000, store_limit=3000
        )
        machine = FrameMachine(IntersectionLC()).start(
            query, data, cand, aux, order,
            match_limit=3000, store_limit=0, emit_rows=True,
        )
        rows = []
        while True:
            batch = machine.advance()
            if batch is None:
                break
            assert isinstance(batch, np.ndarray)
            assert batch.ndim == 2 and batch.shape[1] == query.num_vertices
            rows.extend(tuple(r) for r in batch.tolist())
        assert rows == rec.embeddings
        assert machine.num_matches == rec.num_matches

    def test_advance_after_done_returns_none(self, pipeline):
        cand, aux, order = pipeline
        machine = FrameMachine(IntersectionLC()).start(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, emit_rows=True
        )
        while machine.advance() is not None:
            pass
        assert machine.done
        assert machine.advance() is None


class TestPauseResume:
    def test_restore_replays_identically(self, heavy):
        query, data, cand, aux, order = heavy
        machine = FrameMachine(IntersectionLC()).start(
            query, data, cand, aux, order,
            match_limit=3000, store_limit=0, emit_rows=True,
        )
        # Advance a few batches, snapshot, then record the rest...
        for _ in range(3):
            assert machine.advance() is not None
        snapshot = machine.save_state()
        first = []
        while True:
            batch = machine.advance()
            if batch is None:
                break
            first.extend(map(tuple, batch.tolist()))
        total = machine.num_matches
        # ...rewind and the continuation must replay byte-for-byte.
        machine.restore_state(snapshot)
        assert not machine.done
        second = []
        while True:
            batch = machine.advance()
            if batch is None:
                break
            second.extend(map(tuple, batch.tolist()))
        assert second == first
        assert machine.num_matches == total

    def test_restore_truncates_retained_embeddings(self, pipeline):
        cand, aux, order = pipeline
        machine = FrameMachine(IntersectionLC()).start(
            PAPER_QUERY, PAPER_DATA, cand, aux, order, emit_rows=True
        )
        snapshot = machine.save_state()
        while machine.advance() is not None:
            pass
        assert machine.num_matches == 2
        machine.restore_state(snapshot)
        assert machine.num_matches == 0
        while machine.advance() is not None:
            pass
        assert machine.num_matches == 2
        assert len(machine._store) == 2

    def test_snapshot_preserves_stats(self, heavy):
        query, data, cand, aux, order = heavy
        machine = FrameMachine(IntersectionLC()).start(
            query, data, cand, aux, order,
            match_limit=3000, store_limit=0, emit_rows=True,
        )
        machine.advance()
        snapshot = machine.save_state()
        calls = machine.stats.recursion_calls
        while machine.advance() is not None:
            pass
        final = machine.stats.recursion_calls
        machine.restore_state(snapshot)
        assert machine.stats.recursion_calls == calls
        while machine.advance() is not None:
            pass
        assert machine.stats.recursion_calls == final


class TestStreamingOnFrames:
    """iter_matches is a generator over the frame machine — lazy."""

    def test_islice_composes_lazily(self, heavy):
        query, data, *_ = heavy
        stream = iter_matches(query, data)
        first_two = list(itertools.islice(stream, 2))
        assert len(first_two) == 2
        for emb in first_two:
            assert set(emb) == set(range(query.num_vertices))

    def test_matches_run_results(self, pipeline):
        got = {
            tuple(emb[u] for u in range(PAPER_QUERY.num_vertices))
            for emb in iter_matches(PAPER_QUERY, PAPER_DATA)
        }
        assert got == PAPER_MATCHES

"""Unit tests for the random graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import erdos_renyi_graph, rmat_graph, uniform_labels, zipf_labels
from repro.graph.generators import RMAT_DEFAULT_PARTITION


class TestLabels:
    def test_uniform_deterministic(self):
        assert uniform_labels(50, 4, seed=1) == uniform_labels(50, 4, seed=1)

    def test_uniform_range(self):
        labels = uniform_labels(200, 4, seed=2)
        assert set(labels) <= {0, 1, 2, 3}

    def test_uniform_needs_labels(self):
        with pytest.raises(InvalidGraphError):
            uniform_labels(10, 0, seed=1)

    def test_zipf_skew(self):
        labels = zipf_labels(5000, 5, seed=3, exponent=3.0)
        counts = np.bincount(labels, minlength=5)
        # Label 0 dominates with a strong exponent.
        assert counts[0] > 0.7 * 5000
        assert counts[0] > counts[1] > counts[4]

    def test_zipf_deterministic(self):
        assert zipf_labels(100, 3, seed=7) == zipf_labels(100, 3, seed=7)


class TestErdosRenyi:
    def test_shape(self):
        g = erdos_renyi_graph(100, 6.0, 4, seed=5)
        assert g.num_vertices == 100
        assert abs(g.average_degree - 6.0) < 1.0

    def test_deterministic(self):
        assert erdos_renyi_graph(50, 4.0, 3, seed=9) == erdos_renyi_graph(
            50, 4.0, 3, seed=9
        )

    def test_seeds_differ(self):
        assert erdos_renyi_graph(50, 4.0, 3, seed=1) != erdos_renyi_graph(
            50, 4.0, 3, seed=2
        )

    def test_dense_request(self):
        # Above the rejection-sampling threshold: exercises the exact path.
        g = erdos_renyi_graph(12, 9.0, 2, seed=4)
        assert g.num_edges == min(54, 12 * 11 // 2)

    def test_needs_vertex(self):
        with pytest.raises(InvalidGraphError):
            erdos_renyi_graph(0, 1.0, 1, seed=1)


class TestRMAT:
    def test_shape(self):
        g = rmat_graph(1000, 8.0, 16, seed=42)
        assert g.num_vertices == 1000
        assert abs(g.average_degree - 8.0) < 1.5

    def test_deterministic(self):
        assert rmat_graph(200, 6.0, 8, seed=1) == rmat_graph(200, 6.0, 8, seed=1)

    def test_power_law_hubs(self):
        g = rmat_graph(2000, 8.0, 4, seed=11)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # RMAT with the paper's partition produces pronounced hubs.
        assert degrees[0] > 5 * g.average_degree

    def test_partition_must_sum_to_one(self):
        with pytest.raises(InvalidGraphError, match="sum to 1"):
            rmat_graph(100, 4.0, 2, seed=1, partition=(0.5, 0.5, 0.5, 0.5))

    def test_default_partition_is_papers(self):
        assert RMAT_DEFAULT_PARTITION == (0.45, 0.22, 0.22, 0.11)

    def test_needs_two_vertices(self):
        with pytest.raises(InvalidGraphError):
            rmat_graph(1, 4.0, 2, seed=1)

    def test_label_skew_applied(self):
        g = rmat_graph(3000, 4.0, 5, seed=3, label_skew=3.0)
        counts = np.bincount(np.asarray(g.labels), minlength=5)
        assert counts[0] > 0.6 * 3000

    def test_clustering_creates_triangles(self):
        flat = rmat_graph(1500, 8.0, 4, seed=21, clustering=0.0)
        clustered = rmat_graph(1500, 8.0, 4, seed=21, clustering=0.4)

        def triangle_count(g):
            count = 0
            for u, v in g.edges():
                count += len(g.neighbor_set(u) & g.neighbor_set(v))
            return count // 3

        assert triangle_count(clustered) > 2 * max(1, triangle_count(flat))

    def test_clustering_preserves_edge_budget(self):
        g = rmat_graph(1000, 8.0, 4, seed=22, clustering=0.3)
        assert abs(g.average_degree - 8.0) < 1.5

    def test_invalid_clustering(self):
        with pytest.raises(InvalidGraphError, match="clustering"):
            rmat_graph(100, 4.0, 2, seed=1, clustering=1.5)

"""Unit tests for the Glasgow constraint-programming solver."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.glasgow import GlasgowSolver, glasgow_match
from repro.glasgow.solver import _degree_sequence_dominates
from repro.graph import Graph, rmat_graph, extract_query


class TestDegreeSequences:
    def test_dominates(self):
        assert _degree_sequence_dominates([3, 2], [4, 2, 1])
        assert not _degree_sequence_dominates([3, 2], [2, 2, 2])
        assert not _degree_sequence_dominates([1, 1, 1], [5, 5])
        assert _degree_sequence_dominates([], [1])


class TestInitialDomains:
    def test_label_filtering(self):
        solver = GlasgowSolver(PAPER_QUERY, PAPER_DATA)
        domains = solver.initial_domains()
        # u0 (label A): only v0 qualifies.
        assert domains[0] == 1 << 0

    def test_degree_sequence_filtering(self):
        solver = GlasgowSolver(PAPER_QUERY, PAPER_DATA)
        domains = solver.initial_domains()
        # v8 (B, degree 1) cannot host u1 (B, degree 3).
        assert not domains[1] & (1 << 8)

    def test_domains_complete(self):
        solver = GlasgowSolver(PAPER_QUERY, PAPER_DATA)
        domains = solver.initial_domains()
        for embedding in PAPER_MATCHES:
            for u, v in enumerate(embedding):
                assert domains[u] & (1 << v), (u, v)


class TestSolve:
    def test_paper_example(self):
        result = glasgow_match(PAPER_QUERY, PAPER_DATA)
        assert result.algorithm == "GLW"
        assert set(result.embeddings) == PAPER_MATCHES
        assert result.solved

    def test_match_limit(self):
        result = glasgow_match(PAPER_QUERY, PAPER_DATA, match_limit=1)
        assert result.num_matches == 1

    def test_store_limit(self):
        result = glasgow_match(PAPER_QUERY, PAPER_DATA, store_limit=1)
        assert result.num_matches == 2
        assert len(result.embeddings) == 1

    def test_no_match(self):
        q = Graph(labels=[9, 9, 9], edges=[(0, 1), (1, 2)])
        assert glasgow_match(q, PAPER_DATA).num_matches == 0

    def test_time_limit(self):
        data = rmat_graph(400, 16.0, 1, seed=3, clustering=0.3)
        query = extract_query(data, 12, seed=1)
        result = glasgow_match(query, data, match_limit=None, time_limit=0.05)
        assert not result.solved

    def test_memory_tracking(self):
        solver = GlasgowSolver(PAPER_QUERY, PAPER_DATA)
        result = solver.solve()
        assert solver.peak_domain_copies > 0
        assert result.memory_bytes > 0
        assert solver.nodes_explored > 0

    def test_solver_reusable(self):
        solver = GlasgowSolver(PAPER_QUERY, PAPER_DATA)
        a = solver.solve()
        b = solver.solve()
        assert set(a.embeddings) == set(b.embeddings)


class TestValueOrdering:
    def test_high_degree_tried_first(self):
        # Query triangle of 0-labels; data has two triangles, one attached
        # to a hub. Glasgow's first recorded match should use the
        # higher-degree vertices.
        data = Graph(
            labels=[0] * 7,
            edges=[
                (0, 1), (1, 2), (0, 2),       # triangle A (low degree)
                (3, 4), (4, 5), (3, 5),       # triangle B
                (3, 6), (4, 6), (5, 6),       # hub 6 makes B high-degree
            ],
        )
        query = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        result = glasgow_match(query, data, match_limit=1)
        assert set(result.embeddings[0]) <= {3, 4, 5, 6}

"""Unit tests for the CSR Graph class."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(labels=[], edges=[])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0
        assert g.max_degree == 0

    def test_single_vertex(self):
        g = Graph(labels=[7], edges=[])
        assert g.num_vertices == 1
        assert g.degree(0) == 0
        assert g.label(0) == 7

    def test_basic_path(self):
        g = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.degree(1) == 2
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_duplicate_edges_collapsed(self):
        g = Graph(labels=[0, 0], edges=[(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError, match="self loop"):
            Graph(labels=[0, 0], edges=[(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidGraphError, match="out of range"):
            Graph(labels=[0, 0], edges=[(0, 5)])

    def test_negative_label_rejected(self):
        with pytest.raises(InvalidGraphError, match="non-negative"):
            Graph(labels=[0, -1], edges=[(0, 1)])

    def test_neighbors_sorted(self):
        g = Graph(labels=[0] * 5, edges=[(0, 4), (0, 2), (0, 1), (0, 3)])
        assert g.neighbors(0).tolist() == [1, 2, 3, 4]


class TestAccessors:
    def test_has_edge_symmetric(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_has_edge_absent(self):
        g = Graph(labels=[0, 0, 0], edges=[(0, 1)])
        assert not g.has_edge(0, 2)

    def test_neighbor_set(self, triangle):
        assert triangle.neighbor_set(0) == frozenset({1, 2})

    def test_edges_yields_each_once(self, triangle):
        edges = list(triangle.edges())
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]
        assert all(u < v for u, v in edges)

    def test_vertices_range(self, triangle):
        assert list(triangle.vertices()) == [0, 1, 2]

    def test_labels_array(self, triangle):
        assert triangle.labels.tolist() == [0, 1, 2]


class TestLabelIndex:
    def test_vertices_with_label(self):
        g = Graph(labels=[5, 3, 5, 5], edges=[(0, 1)])
        assert g.vertices_with_label(5).tolist() == [0, 2, 3]
        assert g.vertices_with_label(3).tolist() == [1]

    def test_missing_label_empty(self, triangle):
        assert triangle.vertices_with_label(42).size == 0
        assert triangle.label_frequency(42) == 0

    def test_label_set(self):
        g = Graph(labels=[1, 1, 9], edges=[])
        assert g.label_set == frozenset({1, 9})

    def test_label_frequency(self):
        g = Graph(labels=[2, 2, 2, 0], edges=[])
        assert g.label_frequency(2) == 3
        assert g.label_frequency(0) == 1


class TestNLF:
    def test_nlf_counts(self):
        g = Graph(labels=[0, 1, 1, 2], edges=[(0, 1), (0, 2), (0, 3)])
        assert g.nlf(0) == {1: 2, 2: 1}
        assert g.nlf(3) == {0: 1}

    def test_nlf_isolated_vertex(self):
        g = Graph(labels=[0, 1], edges=[])
        assert g.nlf(0) == {}

    def test_nlf_cached_identity(self, triangle):
        assert triangle.nlf(0) is triangle.nlf(0)


class TestEdgeLabelFrequency:
    def test_counts_unordered(self):
        g = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (2, 3), (1, 2)])
        assert g.edge_label_frequency(0, 1) == 3
        assert g.edge_label_frequency(1, 0) == 3

    def test_same_label_pair(self):
        g = Graph(labels=[0, 0, 1], edges=[(0, 1), (1, 2)])
        assert g.edge_label_frequency(0, 0) == 1
        assert g.edge_label_frequency(1, 1) == 0

    def test_missing_pair(self, triangle):
        assert triangle.edge_label_frequency(0, 42) == 0


class TestAggregates:
    def test_average_degree(self, triangle):
        assert triangle.average_degree == 2.0

    def test_max_degree(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3


class TestDerivedGraphs:
    def test_induced_subgraph(self, paper_data):
        sub, new_to_old = paper_data.induced_subgraph([0, 2, 12])
        assert sub.num_vertices == 3
        # v0-v2 and v2-v12 edges survive; v0-v12 does not exist.
        assert sub.num_edges == 2
        assert sorted(new_to_old.values()) == [0, 2, 12]

    def test_induced_subgraph_labels_preserved(self, paper_data):
        sub, new_to_old = paper_data.induced_subgraph([0, 4])
        for new, old in new_to_old.items():
            assert sub.label(new) == paper_data.label(old)

    def test_induced_subgraph_bad_vertex(self, triangle):
        with pytest.raises(InvalidGraphError):
            triangle.induced_subgraph([0, 99])

    def test_relabeled(self, triangle):
        g2 = triangle.relabeled([9, 9, 9])
        assert g2.labels.tolist() == [9, 9, 9]
        assert g2.num_edges == triangle.num_edges

    def test_relabeled_wrong_length(self, triangle):
        with pytest.raises(InvalidGraphError):
            triangle.relabeled([1, 2])


class TestDunder:
    def test_equality(self):
        a = Graph(labels=[0, 1], edges=[(0, 1)])
        b = Graph(labels=[0, 1], edges=[(0, 1)])
        c = Graph(labels=[0, 2], edges=[(0, 1)])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_equality_other_type(self, triangle):
        assert triangle != "not a graph"

    def test_repr(self, triangle):
        assert "|V|=3" in repr(triangle)
        assert "|E|=3" in repr(triangle)

    def test_numpy_views_not_copies(self, triangle):
        # neighbors() must be a view into the CSR (doc contract).
        view = triangle.neighbors(0)
        assert isinstance(view, np.ndarray)

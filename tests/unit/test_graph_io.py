"""Unit tests for the .graph text format reader/writer."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph, dumps_graph, load_graph, loads_graph, save_graph


VALID = "t 3 2\nv 0 5 1\nv 1 5 2\nv 2 7 1\ne 0 1\ne 1 2\n"


class TestLoads:
    def test_valid(self):
        g = loads_graph(VALID)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.label(2) == 7

    def test_comments_and_blank_lines(self):
        text = "# header comment\n\n" + VALID + "\n# trailing\n"
        assert loads_graph(text).num_edges == 2

    def test_degree_optional(self):
        g = loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0 1\n")
        assert g.num_edges == 1

    def test_missing_header(self):
        with pytest.raises(GraphFormatError, match="missing"):
            loads_graph("v 0 0\n")

    def test_duplicate_header(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            loads_graph("t 1 0\nt 1 0\nv 0 0\n")

    def test_vertex_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares 3 vertices"):
            loads_graph("t 3 0\nv 0 0\nv 1 0\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares 2 edges"):
            loads_graph("t 2 2\nv 0 0\nv 1 0\ne 0 1\n")

    def test_non_consecutive_ids(self):
        with pytest.raises(GraphFormatError, match="consecutive"):
            loads_graph("t 2 0\nv 0 0\nv 5 0\n")

    def test_wrong_declared_degree(self):
        with pytest.raises(GraphFormatError, match="declared degree"):
            loads_graph("t 2 1\nv 0 0 9\nv 1 0 1\ne 0 1\n")

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            loads_graph("t 1 0\nv 0 0\nx 1 2\n")

    def test_short_v_line(self):
        with pytest.raises(GraphFormatError, match="'v' needs"):
            loads_graph("t 1 0\nv 0\n")

    def test_short_e_line(self):
        with pytest.raises(GraphFormatError, match="'e' needs"):
            loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0\n")


class TestRoundtrip:
    def test_dumps_loads_identity(self, paper_data):
        assert loads_graph(dumps_graph(paper_data)) == paper_data

    def test_dumps_format(self, triangle):
        text = dumps_graph(triangle)
        lines = text.strip().split("\n")
        assert lines[0] == "t 3 3"
        assert lines[1] == "v 0 0 2"
        assert "e 0 1" in lines

    def test_file_roundtrip(self, tmp_path, paper_query):
        path = tmp_path / "q.graph"
        save_graph(paper_query, path)
        assert load_graph(path) == paper_query

    def test_empty_graph_roundtrip(self):
        g = Graph(labels=[], edges=[])
        assert loads_graph(dumps_graph(g)) == g

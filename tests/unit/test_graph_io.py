"""Unit tests for the .graph text format reader/writer."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph, dumps_graph, load_graph, loads_graph, save_graph


VALID = "t 3 2\nv 0 5 1\nv 1 5 2\nv 2 7 1\ne 0 1\ne 1 2\n"


class TestLoads:
    def test_valid(self):
        g = loads_graph(VALID)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.label(2) == 7

    def test_comments_and_blank_lines(self):
        text = "# header comment\n\n" + VALID + "\n# trailing\n"
        assert loads_graph(text).num_edges == 2

    def test_degree_optional(self):
        g = loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0 1\n")
        assert g.num_edges == 1

    def test_missing_header(self):
        with pytest.raises(GraphFormatError, match="missing"):
            loads_graph("v 0 0\n")

    def test_duplicate_header(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            loads_graph("t 1 0\nt 1 0\nv 0 0\n")

    def test_vertex_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares 3 vertices"):
            loads_graph("t 3 0\nv 0 0\nv 1 0\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares 2 edges"):
            loads_graph("t 2 2\nv 0 0\nv 1 0\ne 0 1\n")

    def test_non_consecutive_ids(self):
        with pytest.raises(GraphFormatError, match="consecutive"):
            loads_graph("t 2 0\nv 0 0\nv 5 0\n")

    def test_wrong_declared_degree(self):
        with pytest.raises(GraphFormatError, match="declared degree"):
            loads_graph("t 2 1\nv 0 0 9\nv 1 0 1\ne 0 1\n")

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            loads_graph("t 1 0\nv 0 0\nx 1 2\n")

    def test_short_v_line(self):
        with pytest.raises(GraphFormatError, match="'v' needs"):
            loads_graph("t 1 0\nv 0\n")

    def test_short_e_line(self):
        with pytest.raises(GraphFormatError, match="'e' needs"):
            loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0\n")


class TestTypedErrors:
    """Malformed input raises GraphFormatError, never raw numpy/int errors."""

    def test_non_integer_header_token(self):
        with pytest.raises(GraphFormatError, match="line 1.*integer"):
            loads_graph("t x 0\n")

    def test_non_integer_vertex_label(self):
        with pytest.raises(GraphFormatError, match="line 2.*integer"):
            loads_graph("t 1 0\nv 0 abc\n")

    def test_non_integer_edge_endpoint(self):
        with pytest.raises(GraphFormatError, match="line 4.*integer"):
            loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0 1.5\n")

    def test_out_of_range_edge_becomes_format_error(self):
        with pytest.raises(GraphFormatError):
            loads_graph("t 2 1\nv 0 0\nv 1 0\ne 0 9\n")

    def test_source_context_in_message(self):
        with pytest.raises(GraphFormatError, match="data.graph"):
            loads_graph("t x 0\n", source="data.graph")

    def test_load_graph_names_file(self, tmp_path):
        path = tmp_path / "broken.graph"
        path.write_text("t x 0\n")
        with pytest.raises(GraphFormatError, match="broken.graph"):
            load_graph(path)

    def test_load_graph_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="nope.graph"):
            load_graph(tmp_path / "nope.graph")

    def test_load_graph_binary_junk(self, tmp_path):
        path = tmp_path / "junk.graph"
        path.write_bytes(bytes([0xFF, 0xFE, 0x00, 0x80]) * 8)
        with pytest.raises(GraphFormatError):
            load_graph(path)


class TestRgfDispatch:
    def test_save_load_rgf_by_suffix(self, tmp_path, paper_data):
        path = tmp_path / "d.rgf"
        save_graph(paper_data, path)
        loaded = load_graph(path)
        assert loaded == paper_data
        assert loaded._store is not None and loaded._store.backend == "mmap"

    def test_magic_sniff_without_suffix(self, tmp_path, paper_data):
        from repro.graph import write_rgf

        path = tmp_path / "d.bin"
        write_rgf(paper_data, path)
        assert load_graph(path) == paper_data

    def test_truncated_rgf_is_typed(self, tmp_path, paper_data):
        path = tmp_path / "d.rgf"
        save_graph(paper_data, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(GraphFormatError, match="truncated"):
            load_graph(path)


class TestRoundtrip:
    def test_dumps_loads_identity(self, paper_data):
        assert loads_graph(dumps_graph(paper_data)) == paper_data

    def test_dumps_format(self, triangle):
        text = dumps_graph(triangle)
        lines = text.strip().split("\n")
        assert lines[0] == "t 3 3"
        assert lines[1] == "v 0 0 2"
        assert "e 0 1" in lines

    def test_file_roundtrip(self, tmp_path, paper_query):
        path = tmp_path / "q.graph"
        save_graph(paper_query, path)
        assert load_graph(path) == paper_query

    def test_empty_graph_roundtrip(self):
        g = Graph(labels=[], edges=[])
        assert loads_graph(dumps_graph(g)) == g

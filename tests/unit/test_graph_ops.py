"""Unit tests for graph structure helpers (2-core, BFS tree, connectivity)."""

import pytest

from repro.graph import Graph, bfs_tree, connected, core_vertices, two_core


class TestConnected:
    def test_empty_and_single(self):
        assert connected(Graph(labels=[], edges=[]))
        assert connected(Graph(labels=[0], edges=[]))

    def test_connected_path(self):
        assert connected(Graph(labels=[0] * 3, edges=[(0, 1), (1, 2)]))

    def test_disconnected(self):
        assert not connected(Graph(labels=[0] * 3, edges=[(0, 1)]))

    def test_two_components(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (2, 3)])
        assert not connected(g)


class TestTwoCore:
    def test_triangle_is_core(self, triangle):
        assert two_core(triangle) == {0, 1, 2}

    def test_path_has_empty_core(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        assert two_core(g) == set()

    def test_triangle_with_tail(self):
        # Triangle 0-1-2 plus tail 2-3-4: the tail peels away.
        g = Graph(
            labels=[0] * 5,
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)],
        )
        assert two_core(g) == {0, 1, 2}

    def test_cycle_entirely_core(self):
        g = Graph(labels=[0] * 5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert two_core(g) == {0, 1, 2, 3, 4}

    def test_paper_query_all_core(self, paper_query):
        assert core_vertices(paper_query) == {0, 1, 2, 3}


class TestBFSTree:
    def test_paper_tree_matches_figure(self, paper_query):
        # Figure 1's thick lines: tree edges (u0,u1), (u0,u2), (u1,u3).
        tree = bfs_tree(paper_query, 0)
        assert tree.root == 0
        assert tree.order == (0, 1, 2, 3)
        assert set(tree.tree_edges) == {(0, 1), (0, 2), (1, 3)}
        assert set(tree.non_tree_edges) == {(1, 2), (2, 3)}

    def test_parents_and_depths(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert tree.parent[0] == -1
        assert tree.parent[3] == 1
        assert tree.depth == (0, 1, 1, 2)
        assert tree.max_depth == 2

    def test_children(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert tree.children[0] == (1, 2)
        assert tree.children[1] == (3,)

    def test_position(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert [tree.position(v) for v in tree.order] == [0, 1, 2, 3]

    def test_vertices_at_depth(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert tree.vertices_at_depth(1) == [1, 2]

    def test_backward_neighbors(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert set(tree.backward_neighbors(paper_query, 3)) == {1, 2}
        assert tree.backward_neighbors(paper_query, 0) == []

    def test_root_to_leaf_paths(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        assert sorted(tree.root_to_leaf_paths()) == [(0, 1, 3), (0, 2)]

    def test_different_root(self, paper_query):
        tree = bfs_tree(paper_query, 3)
        assert tree.root == 3
        assert tree.depth[3] == 0

    def test_disconnected_raises(self):
        g = Graph(labels=[0, 0, 0], edges=[(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            bfs_tree(g, 0)

    def test_non_tree_edge_orientation(self, paper_query):
        tree = bfs_tree(paper_query, 0)
        for u, v in tree.non_tree_edges:
            assert tree.position(u) < tree.position(v)

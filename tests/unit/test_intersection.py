"""Unit tests for the set-intersection kernels."""

import pytest

from repro.utils.intersection import (
    BitmapSetIndex,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
    multi_intersect,
)

KERNELS = [intersect_merge, intersect_galloping, intersect_hybrid]


@pytest.mark.parametrize("kernel", KERNELS)
class TestPairwiseKernels:
    def test_basic(self, kernel):
        assert kernel([1, 3, 5, 7], [3, 4, 5, 6]) == [3, 5]

    def test_disjoint(self, kernel):
        assert kernel([1, 2], [3, 4]) == []

    def test_identical(self, kernel):
        assert kernel([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    def test_empty_inputs(self, kernel):
        assert kernel([], [1, 2]) == []
        assert kernel([1, 2], []) == []
        assert kernel([], []) == []

    def test_subset(self, kernel):
        assert kernel([2, 4], list(range(10))) == [2, 4]

    def test_single_elements(self, kernel):
        assert kernel([5], [5]) == [5]
        assert kernel([5], [6]) == []

    def test_result_sorted(self, kernel):
        big = list(range(0, 1000, 3))
        small = list(range(0, 1000, 7))
        result = kernel(big, small)
        assert result == sorted(set(big) & set(small))


class TestGalloping:
    def test_skewed_sizes(self):
        small = [100, 5000, 9999]
        large = list(range(10000))
        assert intersect_galloping(small, large) == small

    def test_argument_order_irrelevant(self):
        a, b = [1, 5, 9], list(range(100))
        assert intersect_galloping(a, b) == intersect_galloping(b, a)

    def test_early_exit_past_end(self):
        assert intersect_galloping([500], [1, 2, 3]) == []


class TestHybrid:
    def test_dispatches_to_gallop_on_skew(self):
        # Just correctness under the skew threshold; dispatch is internal.
        small = [64]
        large = list(range(10000))
        assert intersect_hybrid(small, large) == [64]

    def test_similar_sizes(self):
        assert intersect_hybrid([1, 2, 3, 4], [2, 4, 6, 8]) == [2, 4]


class TestMultiIntersect:
    def test_three_lists(self):
        assert multi_intersect([[1, 2, 3, 4], [2, 4, 6], [0, 2, 4, 8]]) == [2, 4]

    def test_single_list(self):
        assert multi_intersect([[3, 1, 2][1:]]) == [1, 2]

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            multi_intersect([])

    def test_short_circuit_on_empty(self):
        assert multi_intersect([[1], [], [1, 2, 3]]) == []

    def test_input_not_mutated(self):
        lists = [[1, 2], [2, 3]]
        multi_intersect(lists)
        assert lists == [[1, 2], [2, 3]]


class TestBitmapSetIndex:
    def test_roundtrip(self):
        idx = BitmapSetIndex()
        assert idx.decode(idx.encode([5, 1, 9])) == [1, 5, 9]

    def test_intersect(self):
        idx = BitmapSetIndex()
        assert idx.intersect([1, 3, 5], [3, 4, 5]) == [3, 5]

    def test_multi_intersect(self):
        idx = BitmapSetIndex()
        assert idx.multi_intersect([[1, 2, 3], [2, 3], [3, 9]]) == [3]

    def test_multi_empty_raises(self):
        with pytest.raises(ValueError):
            BitmapSetIndex().multi_intersect([])

    def test_cache_hits_by_identity(self):
        idx = BitmapSetIndex()
        lst = [1, 2, 3]
        idx.intersect(lst, [2])
        assert id(lst) in idx._cache

    def test_clear(self):
        idx = BitmapSetIndex()
        idx.intersect([1], [1])
        idx.clear()
        assert not idx._cache

    def test_empty_sets(self):
        idx = BitmapSetIndex()
        assert idx.intersect([], [1, 2]) == []
        assert idx.decode(0) == []

    def test_agrees_with_hybrid(self):
        idx = BitmapSetIndex()
        a = list(range(0, 500, 3))
        b = list(range(0, 500, 5))
        assert idx.intersect(a, b) == intersect_hybrid(a, b)

    def test_cache_survives_id_recycling(self):
        """Regression: CPython reuses ids of collected lists; a bare-id
        cache key would alias a dead list's encoding."""
        import numpy as np

        idx = BitmapSetIndex()
        rng = np.random.default_rng(11)
        for _ in range(200):
            # Fresh lists each iteration are freed immediately, making id
            # collisions with earlier iterations likely.
            a = sorted(set(rng.integers(0, 400, size=30).tolist()))
            b = sorted(set(rng.integers(0, 400, size=30).tolist()))
            assert idx.intersect(a, b) == sorted(set(a) & set(b))

"""Unit tests for the kernel backend registry (repro.utils.kernels)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.intersection import intersect_merge, multi_intersect
from repro.utils.kernels import (
    AUTO_DENSITY_THRESHOLD,
    BitsetKernel,
    KernelBackend,
    NumpyKernel,
    QFilterKernel,
    ScalarKernel,
    _REGISTRY,
    available_kernels,
    get_kernel,
    kernel_name,
    register_kernel,
)


class TestRegistry:
    def test_builtin_backends_listed(self):
        names = available_kernels()
        assert {"scalar", "numpy", "bitset", "qfilter", "auto"} <= set(names)
        assert names == sorted(set(names) - {"auto"}) + ["auto"]

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("scalar", ScalarKernel),
            ("numpy", NumpyKernel),
            ("bitset", BitsetKernel),
            ("qfilter", QFilterKernel),
        ],
    )
    def test_get_by_name(self, name, cls):
        kernel = get_kernel(name)
        assert isinstance(kernel, cls)
        assert kernel.name == name

    def test_name_case_insensitive(self):
        assert isinstance(get_kernel("NumPy"), NumpyKernel)
        assert isinstance(get_kernel("  BITSET "), BitsetKernel)

    def test_fresh_instance_per_call(self):
        # Caching backends key encodings on object identity; a shared
        # singleton would grow its cache without bound across match runs.
        assert get_kernel("bitset") is not get_kernel("bitset")

    def test_backend_instance_passes_through(self):
        kernel = NumpyKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            get_kernel("simd512")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert isinstance(get_kernel(), ScalarKernel)

    def test_env_var_unset_falls_back_to_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert isinstance(get_kernel(), NumpyKernel)

    def test_register_custom_backend(self):
        class EchoKernel(KernelBackend):
            name = "echo-test"

            def intersect(self, a, b):
                return intersect_merge(a, b)

        register_kernel("echo-test", EchoKernel)
        try:
            assert "echo-test" in available_kernels()
            assert isinstance(get_kernel("echo-test"), EchoKernel)
        finally:
            del _REGISTRY["echo-test"]


class TestAutoHeuristic:
    class _Data:
        def __init__(self, n):
            self.num_vertices = n

    class _Cands:
        def __init__(self, avg):
            self.average_size = avg

    def test_dense_candidates_pick_bitset(self):
        data = self._Data(1000)
        cands = self._Cands(1000 * AUTO_DENSITY_THRESHOLD * 2)
        assert isinstance(
            get_kernel("auto", data=data, candidates=cands), BitsetKernel
        )

    def test_sparse_candidates_pick_numpy(self):
        data = self._Data(1000)
        cands = self._Cands(1000 * AUTO_DENSITY_THRESHOLD / 2)
        assert isinstance(
            get_kernel("auto", data=data, candidates=cands), NumpyKernel
        )

    def test_no_context_picks_numpy(self):
        assert isinstance(get_kernel("auto"), NumpyKernel)


class TestBackendSemantics:
    @pytest.mark.parametrize("name", ["scalar", "numpy", "bitset", "qfilter"])
    def test_pairwise(self, name):
        kernel = get_kernel(name)
        got = kernel.intersect([1, 3, 5, 9], [3, 4, 5, 6])
        assert [int(v) for v in got] == [3, 5]

    @pytest.mark.parametrize("name", ["scalar", "numpy", "bitset", "qfilter"])
    def test_multiway(self, name):
        kernel = get_kernel(name)
        got = kernel.multi_intersect([[1, 2, 3, 4], [2, 4, 6], [0, 2, 4, 8]])
        assert [int(v) for v in got] == [2, 4]

    @pytest.mark.parametrize("name", ["scalar", "numpy", "bitset", "qfilter"])
    def test_empty_input(self, name):
        kernel = get_kernel(name)
        assert list(kernel.intersect([], [1, 2, 3])) == []
        assert list(kernel.intersect([1, 2, 3], [])) == []

    @pytest.mark.parametrize("name", ["scalar", "numpy", "bitset", "qfilter"])
    def test_multiway_rejects_no_lists(self, name):
        with pytest.raises(ValueError):
            get_kernel(name).multi_intersect([])

    def test_numpy_accepts_arrays_and_lists(self):
        kernel = NumpyKernel()
        a = np.array([2, 4, 6, 8], dtype=np.int64)
        assert kernel.intersect(a, [4, 8, 12]).tolist() == [4, 8]

    def test_numpy_gallop_path(self):
        # Size ratio beyond GALLOP_RATIO exercises the searchsorted branch.
        small = np.array([5, 500, 999], dtype=np.int64)
        large = np.arange(0, 1000, 5, dtype=np.int64)
        assert NumpyKernel().intersect(small, large).tolist() == [5, 500]

    def test_kernel_name_helper(self):
        assert kernel_name(None) is None
        assert kernel_name(NumpyKernel()) == "numpy"
        assert kernel_name(intersect_merge) == "intersect_merge"


class TestBitsetEncoding:
    def test_roundtrip(self):
        values = [0, 1, 63, 64, 65, 1000]
        words = BitsetKernel.encode(values)
        assert BitsetKernel.decode(words).tolist() == values

    def test_empty_roundtrip(self):
        assert BitsetKernel.decode(BitsetKernel.encode([])).tolist() == []

    def test_word_count_truncation(self):
        # Different universes: intersect must align on the shorter word run.
        kernel = BitsetKernel()
        assert kernel.intersect([3, 70], [3, 4, 5000]).tolist() == [3]

    def test_encode_cached_by_identity(self):
        kernel = BitsetKernel()
        values = [1, 2, 3]
        first = kernel.encode_cached(values)
        assert kernel.encode_cached(values) is first
        kernel.clear()
        assert kernel.encode_cached(values) is not first


class TestMultiIntersectShortCircuit:
    def test_scalar_function_stops_on_empty_intermediate(self):
        # Satellite pin: once the running intersection is empty the
        # remaining pairwise kernel calls are skipped entirely.
        calls = []

        def counting(a, b):
            calls.append((list(a), list(b)))
            return intersect_merge(a, b)

        lists = [[1, 2], [3, 4], [5, 6], [7, 8]]
        assert multi_intersect(lists, kernel=counting) == []
        assert len(calls) == 1

    def test_backend_default_stops_on_empty_intermediate(self):
        class Counting(ScalarKernel):
            def __init__(self):
                self.calls = 0

            def intersect(self, a, b):
                self.calls += 1
                return intersect_merge(a, b)

            # Use the KernelBackend fold, not ScalarKernel's delegation.
            multi_intersect = KernelBackend.multi_intersect

        kernel = Counting()
        assert kernel.multi_intersect([[1], [2], [3], [4]]) == []
        assert kernel.calls == 1

    def test_numpy_backend_stops_on_empty_intermediate(self):
        class Counting(NumpyKernel):
            def __init__(self):
                self.calls = 0

            def intersect(self, a, b):
                self.calls += 1
                return NumpyKernel.intersect(self, a, b)

        kernel = Counting()
        result = kernel.multi_intersect([[1], [2], [3], [4]])
        assert list(result) == []
        assert kernel.calls == 1

    def test_bitset_backend_skips_encodes_after_empty(self):
        class Counting(BitsetKernel):
            def __init__(self):
                super().__init__()
                self.encodes = 0

            def encode_cached(self, values):
                self.encodes += 1
                return BitsetKernel.encode_cached(self, values)

        kernel = Counting()
        result = kernel.multi_intersect([[1], [2], [3], [4]])
        assert list(result) == []
        # First two lists encode; their AND is empty, so the rest skip.
        assert kernel.encodes == 2


class TestBitsetCacheBudget:
    """The encode cache is a byte-budgeted LRU (REPRO_BITSET_CACHE_MB)."""

    def test_default_budget_from_env(self, monkeypatch):
        from repro.utils.kernels import _bitset_cache_budget

        monkeypatch.delenv("REPRO_BITSET_CACHE_MB", raising=False)
        assert _bitset_cache_budget() == int(64.0 * 1024 * 1024)
        monkeypatch.setenv("REPRO_BITSET_CACHE_MB", "0.5")
        assert _bitset_cache_budget() == int(0.5 * 1024 * 1024)

    def test_invalid_env_raises(self, monkeypatch):
        from repro.utils.kernels import _bitset_cache_budget

        monkeypatch.setenv("REPRO_BITSET_CACHE_MB", "lots")
        with pytest.raises(ConfigurationError):
            _bitset_cache_budget()
        monkeypatch.setenv("REPRO_BITSET_CACHE_MB", "-1")
        with pytest.raises(ConfigurationError):
            _bitset_cache_budget()

    def test_eviction_is_lru(self):
        # Budget fits exactly two encodings of [0..63] (one word = 8
        # bytes each): inserting a third evicts the least recently used.
        kernel = BitsetKernel(budget_bytes=16)
        a, b, c = [1], [2], [3]
        wa = kernel.encode_cached(a)
        kernel.encode_cached(b)
        assert kernel.encode_cached(a) is wa  # touch a: b becomes LRU
        kernel.encode_cached(c)  # evicts b
        info = kernel.cache_info()
        assert info["entries"] == 2
        assert info["bytes"] <= 16
        assert kernel.encode_cached(a) is wa  # a survived

    def test_oversized_encoding_bypasses_cache(self):
        kernel = BitsetKernel(budget_bytes=8)
        big = [0, 64, 128]  # three words = 24 bytes > budget
        first = kernel.encode_cached(big)
        assert kernel.encode_cached(big) is not first
        assert kernel.cache_info()["entries"] == 0

    def test_clear_resets_byte_accounting(self):
        kernel = BitsetKernel(budget_bytes=1024)
        kernel.encode_cached([1, 2, 3])
        assert kernel.cache_info()["bytes"] > 0
        kernel.clear()
        info = kernel.cache_info()
        assert info == {"entries": 0, "bytes": 0, "budget_bytes": 1024}

    def test_pickle_preserves_budget_drops_cache(self):
        import pickle

        kernel = BitsetKernel(budget_bytes=4096)
        values = [1, 2, 3]
        kernel.encode_cached(values)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.cache_info()["entries"] == 0
        assert clone.cache_info()["budget_bytes"] == 4096
        # And the clone still works.
        assert clone.intersect([1, 2], [2, 3]).tolist() == [2]

"""Unit tests for the ComputeLC methods (Algorithms 2-5)."""

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.enumeration.local_candidates import (
    CandidateScanLC,
    IntersectionLC,
    LCContext,
    NeighborScanLC,
    TreeAdjacencyLC,
    VF2ppLC,
)
from repro.errors import ConfigurationError
from repro.filtering import AuxiliaryStructure, GraphQLFilter
from repro.graph.ops import bfs_tree
from repro.utils.intersection import BitmapSetIndex


@pytest.fixture(scope="module")
def candidates():
    return GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)


@pytest.fixture(scope="module")
def auxiliary(candidates):
    return AuxiliaryStructure.build(PAPER_QUERY, PAPER_DATA, candidates, scope="all")


def make_ctx(candidates=None, auxiliary=None, mapping=None):
    mapping = mapping if mapping is not None else [-1] * 4
    used = {v: u for u, v in enumerate(mapping) if v != -1}
    return LCContext(
        query=PAPER_QUERY,
        data=PAPER_DATA,
        candidates=candidates,
        auxiliary=auxiliary,
        mapping=mapping,
        used=used,
    )


class TestNeighborScan:
    def test_start_position_uses_ldf(self):
        ctx = make_ctx()
        lc = NeighborScanLC().compute(ctx, 1, [], -1)
        assert sorted(lc) == [2, 4, 6]

    def test_start_position_prefers_candidates(self, candidates):
        ctx = make_ctx(candidates=candidates)
        lc = NeighborScanLC().compute(ctx, 1, [], -1)
        assert sorted(lc) == [2, 4]

    def test_scans_parent_neighbors(self):
        # u0 -> v0 mapped; LC(u1) = B-labeled neighbors of v0 with d >= 3.
        ctx = make_ctx(mapping=[0, -1, -1, -1])
        lc = NeighborScanLC().compute(ctx, 1, [0], 0)
        assert sorted(lc) == [2, 4, 6]

    def test_checks_other_backward_edges(self):
        # u0 -> v0, u1 -> v4; LC(u2) needs adjacency to both.
        ctx = make_ctx(mapping=[0, 4, -1, -1])
        lc = NeighborScanLC().compute(ctx, 2, [0, 1], 0)
        assert sorted(lc) == [3, 5]


class TestVF2ppExtraRules:
    def test_lookahead_prunes(self):
        # u1's forward neighbors (beyond backward {u0}) are u2 (C) and
        # u3 (D): v6's C/D neighbors v9/v11 are unmapped, so v6 stays;
        # but map v12 already and v2 loses its only free D neighbor.
        ctx = make_ctx(mapping=[0, -1, -1, 12])
        lc = VF2ppLC().compute(ctx, 1, [0], 0)
        assert 2 not in lc  # v2's D-neighbor v12 is taken.
        assert 4 in lc  # v4 still has v10 free.

    def test_matches_alg2_when_no_forward_neighbors(self):
        # Last query vertex: no forward neighbors, rules are vacuous.
        ctx = make_ctx(mapping=[0, 4, 3, -1])
        base = NeighborScanLC().compute(ctx, 3, [1, 2], 1)
        extra = VF2ppLC().compute(ctx, 3, [1, 2], 1)
        assert list(base) == list(extra)


class TestCandidateScan:
    def test_scans_whole_candidate_set(self, candidates):
        ctx = make_ctx(candidates=candidates, mapping=[0, -1, -1, -1])
        lc = CandidateScanLC().compute(ctx, 1, [0], 0)
        assert sorted(lc) == [2, 4]

    def test_start_returns_candidates(self, candidates):
        ctx = make_ctx(candidates=candidates)
        assert CandidateScanLC().compute(ctx, 0, [], -1) == candidates[0]

    def test_requires_candidates(self):
        ctx = make_ctx()
        with pytest.raises(ConfigurationError, match="requires candidate"):
            CandidateScanLC().prepare(ctx)


class TestTreeAdjacency:
    def test_single_backward_reads_aux(self, candidates):
        tree = bfs_tree(PAPER_QUERY, 0)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, candidates, scope="tree", tree=tree
        )
        ctx = make_ctx(candidates=candidates, auxiliary=aux, mapping=[0, -1, -1, -1])
        lc = TreeAdjacencyLC().compute(ctx, 1, [0], 0)
        assert sorted(lc) == [2, 4]

    def test_residual_backward_edges_checked(self, candidates):
        tree = bfs_tree(PAPER_QUERY, 0)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, candidates, scope="tree", tree=tree
        )
        # u3's backward = {u1, u2}, tree parent u1 (mapped v2): base list
        # from aux is v2's D candidates {v12}; v12 must also touch M[u2].
        ctx = make_ctx(candidates=candidates, auxiliary=aux, mapping=[0, 2, 3, -1])
        lc = TreeAdjacencyLC().compute(ctx, 3, [1, 2], 1)
        assert lc == []  # v12 is not adjacent to v3.

    def test_requires_auxiliary(self, candidates):
        ctx = make_ctx(candidates=candidates)
        with pytest.raises(ConfigurationError, match="auxiliary"):
            TreeAdjacencyLC().prepare(ctx)


class TestIntersection:
    def test_single_backward_reads_aux(self, candidates, auxiliary):
        ctx = make_ctx(candidates=candidates, auxiliary=auxiliary, mapping=[0, -1, -1, -1])
        lc = IntersectionLC().compute(ctx, 1, [0], 0)
        assert sorted(lc) == [2, 4]

    def test_intersects_multiple_backward(self, candidates, auxiliary):
        # u3 backward {u1: v4, u2: v3} -> N(v4) ∩ C(u3) = {10,12},
        # N(v3) ∩ C(u3) = {10} -> LC = {10}.
        ctx = make_ctx(candidates=candidates, auxiliary=auxiliary, mapping=[0, 4, 3, -1])
        lc = IntersectionLC().compute(ctx, 3, [1, 2], 1)
        assert lc == [10]

    def test_custom_kernel(self, candidates, auxiliary):
        bitmap = BitmapSetIndex()
        lc_method = IntersectionLC(kernel=bitmap.intersect)
        ctx = make_ctx(candidates=candidates, auxiliary=auxiliary, mapping=[0, 4, 3, -1])
        assert lc_method.compute(ctx, 3, [1, 2], 1) == [10]

    def test_prepare_validates_scope(self, candidates):
        none_aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, candidates, scope="none"
        )
        ctx = make_ctx(candidates=candidates, auxiliary=none_aux)
        with pytest.raises(ConfigurationError):
            IntersectionLC().prepare(ctx)


class TestAgreementAcrossMethods:
    def test_all_methods_agree_on_valid_states(self, candidates, auxiliary):
        """Given identical candidates, every LC method must return the same
        set at any reachable search state (Algorithms 2-5 compute the same
        LC(u, M), only at different cost)."""
        tree = bfs_tree(PAPER_QUERY, 0)
        tree_aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, candidates, scope="tree", tree=tree
        )
        states = [
            (1, [0], 0, [0, -1, -1, -1]),
            (2, [0, 1], 0, [0, 4, -1, -1]),
            (3, [1, 2], 1, [0, 4, 3, -1]),
            (3, [1, 2], 1, [0, 4, 5, -1]),
        ]
        for u, backward, parent, mapping in states:
            ctx_full = make_ctx(candidates, auxiliary, list(mapping))
            ctx_tree = make_ctx(candidates, tree_aux, list(mapping))
            results = {
                "alg3": sorted(CandidateScanLC().compute(ctx_full, u, backward, parent)),
                "alg4": sorted(TreeAdjacencyLC().compute(ctx_tree, u, backward, parent)),
                "alg5": sorted(IntersectionLC().compute(ctx_full, u, backward, parent)),
            }
            # Alg 2 works from LDF, a superset of GQL candidates.
            alg2 = set(NeighborScanLC().compute(ctx_full, u, backward, parent))
            reference = results["alg3"]
            assert results["alg4"] == reference, (u, mapping)
            assert results["alg5"] == reference, (u, mapping)
            assert set(reference) <= alg2, (u, mapping)

"""Unit tests for graph metrics and stand-in structural validation."""

import pytest

from repro.graph import Graph, rmat_graph
from repro.graph.metrics import (
    degree_histogram,
    density,
    global_clustering_coefficient,
    triangle_count,
)


class TestTriangleCount:
    def test_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_path_has_none(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        assert triangle_count(g) == 0

    def test_k4(self):
        k4 = Graph(
            labels=[0] * 4,
            edges=[(a, b) for a in range(4) for b in range(a + 1, 4)],
        )
        assert triangle_count(k4) == 4

    def test_two_disjoint_triangles(self):
        g = Graph(
            labels=[0] * 6,
            edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert triangle_count(g) == 2

    def test_agrees_with_networkx(self):
        import networkx as nx

        g = rmat_graph(300, 8.0, 2, seed=71, clustering=0.3)
        nx_graph = nx.Graph(list(g.edges()))
        nx_graph.add_nodes_from(g.vertices())
        expected = sum(nx.triangles(nx_graph).values()) // 3
        assert triangle_count(g) == expected


class TestClustering:
    def test_triangle_is_fully_clustered(self, triangle):
        assert global_clustering_coefficient(triangle) == 1.0

    def test_star_has_zero(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (0, 2), (0, 3)])
        assert global_clustering_coefficient(g) == 0.0

    def test_edgeless(self):
        assert global_clustering_coefficient(Graph(labels=[0, 1], edges=[])) == 0.0

    def test_clustered_rmat_beats_plain(self):
        plain = rmat_graph(1000, 8.0, 2, seed=81, clustering=0.0)
        clustered = rmat_graph(1000, 8.0, 2, seed=81, clustering=0.4)
        assert global_clustering_coefficient(
            clustered
        ) > 1.5 * global_clustering_coefficient(plain)


class TestDensity:
    def test_complete_graph(self):
        k4 = Graph(
            labels=[0] * 4,
            edges=[(a, b) for a in range(4) for b in range(a + 1, 4)],
        )
        assert density(k4) == 1.0

    def test_single_vertex(self):
        assert density(Graph(labels=[0], edges=[])) == 0.0


class TestDegreeHistogram:
    def test_star(self):
        g = Graph(labels=[0] * 4, edges=[(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_sums_to_vertices(self, small_random):
        histogram = degree_histogram(small_random)
        assert sum(histogram.values()) == small_random.num_vertices


class TestStandinShapes:
    """The properties DESIGN.md promises of the dataset stand-ins."""

    def test_standins_have_clustering(self):
        from repro.study import load_dataset

        g = load_dataset("yt", scale=0.3)
        assert global_clustering_coefficient(g) > 0.02

    def test_standins_have_hubs(self):
        from repro.study import load_dataset

        g = load_dataset("yt", scale=0.3)
        assert g.max_degree > 5 * g.average_degree

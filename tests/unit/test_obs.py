"""Unit tests for repro.obs: tracer, metrics registry, schema validators."""

import json
import threading

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.core import match
from repro.enumeration.stats import EnumerationStats
from repro.obs import (
    Metrics,
    TraceSchemaError,
    Tracer,
    add_counter,
    collecting,
    get_metrics,
    get_tracer,
    record_stage,
    set_tracer,
    span,
    tracing,
    validate_bench_kernels,
    validate_trace_file,
    validate_trace_lines,
)


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent == by_name["outer"].span_id
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None

    def test_durations_nonnegative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        inner, outer = by_name["inner"], by_name["outer"]
        assert 0 <= inner.duration <= outer.duration
        assert outer.start <= inner.start and inner.end <= outer.end

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("phase", algorithm="GQL") as s:
            s.annotate(matches=7)
        (finished,) = tracer.spans
        assert finished.attrs == {"algorithm": "GQL", "matches": 7}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].parent == by_name["root"].span_id
        assert by_name["b"].parent == by_name["root"].span_id

    def test_total_seconds(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        with tracer.span("x"):
            pass
        assert tracer.total_seconds("x") == pytest.approx(
            sum(s.duration for s in tracer.spans)
        )
        assert tracer.total_seconds("missing") == 0.0


class TestAmbientTracing:
    def test_disabled_span_is_noop(self):
        assert get_tracer() is None
        with span("anything", attr=1) as s:
            s.annotate(more=2)  # must not raise
        assert get_tracer() is None

    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        with tracing(tracer):
            assert get_tracer() is tracer
            with span("seen"):
                pass
        assert get_tracer() is None
        assert [s.name for s in tracer.spans] == ["seen"]

    def test_nested_tracing_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            with tracing(inner):
                with span("deep"):
                    pass
            assert get_tracer() is outer
        assert [s.name for s in inner.spans] == ["deep"]
        assert outer.spans == []

    def test_thread_isolation(self):
        tracer = Tracer()
        seen_in_thread = []

        def worker():
            seen_in_thread.append(get_tracer())

        with tracing(tracer):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen_in_thread == [None]

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        assert set_tracer(tracer) is None
        assert set_tracer(None) is tracer


class TestMetrics:
    def test_add_and_get(self):
        m = Metrics()
        m.add("x")
        m.add("x", 4)
        assert m.counters["x"] == 5

    def test_record_stage_tracks_initial_final_pruned(self):
        m = Metrics()
        m.record_stage("ldf", 100)
        m.record_stage("nlf", 60)
        m.record_stage("refine", 45)
        assert m.counters["filter.candidates_initial"] == 100
        assert m.counters["filter.candidates_final"] == 45
        assert m.counters["filter.pruned"] == 55
        assert [s.rule for s in m.filter_stages] == ["ldf", "nlf", "refine"]

    def test_record_enumeration(self):
        m = Metrics()
        stats = EnumerationStats(
            recursion_calls=10, candidates_scanned=20, conflicts=3,
            failing_set_prunes=1,
        )
        m.record_enumeration(stats)
        assert m.counters["enumerate.recursion_calls"] == 10
        assert m.counters["enumerate.candidates_scanned"] == 20
        assert m.counters["enumerate.conflicts"] == 3
        assert m.counters["enumerate.failing_set_prunes"] == 1

    def test_merge_sums(self):
        a = Metrics(counters={"x": 1, "y": 2}, phase_seconds={"filter": 0.5})
        b = Metrics(counters={"y": 3, "z": 4}, phase_seconds={"filter": 0.25})
        merged = a.merge(b)
        assert merged.counters == {"x": 1, "y": 5, "z": 4}
        assert merged.phase_seconds == {"filter": 0.75}

    def test_merge_drops_stage_diagnostics(self):
        a = Metrics()
        a.record_stage("ldf", 10)
        merged = a.merge(Metrics())
        assert merged.filter_stages == ()
        assert merged.counters["filter.candidates_initial"] == 10

    def test_dict_round_trip(self):
        m = Metrics()
        m.add("enumerate.recursion_calls", 7)
        m.record_stage("ldf", 12)
        m.record_phase("filter", 0.125)
        assert Metrics.from_dict(m.to_dict()) == m
        # and it is JSON-serializable as written
        assert json.loads(json.dumps(m.to_dict())) == m.to_dict()

    def test_ambient_collection(self):
        m = Metrics()
        assert get_metrics() is None
        add_counter("ignored")  # no sink installed: no-op
        record_stage("ignored", 5)
        with collecting(m):
            assert get_metrics() is m
            add_counter("seen", 2)
            record_stage("ldf", 9)
        assert get_metrics() is None
        assert m.counters["seen"] == 2
        assert m.counters["filter.candidates_initial"] == 9


class TestTraceSchema:
    def _trace_lines(self):
        tracer = Tracer()
        with tracer.span("match"):
            with tracer.span("filter"):
                pass
            with tracer.span("enumerate"):
                pass
        return [json.dumps(r) for r in tracer.to_dicts()]

    def test_valid_trace_passes(self):
        summary = validate_trace_lines(self._trace_lines())
        assert summary["spans"] == 3
        assert summary["roots"] == 1
        assert summary["names"] == {"match": 1, "filter": 1, "enumerate": 1}

    def test_write_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("match"):
            with tracer.span("filter"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        summary = validate_trace_file(str(path))
        assert summary["spans"] == 2

    def test_missing_header_rejected(self):
        lines = self._trace_lines()[1:]
        with pytest.raises(TraceSchemaError, match="meta header"):
            validate_trace_lines(lines)

    def test_bad_span_count_rejected(self):
        lines = self._trace_lines()
        header = json.loads(lines[0])
        header["spans"] = 99
        with pytest.raises(TraceSchemaError, match="declares"):
            validate_trace_lines([json.dumps(header)] + lines[1:])

    def test_duplicate_ids_rejected(self):
        lines = self._trace_lines()
        header = json.loads(lines[0])
        header["spans"] += 1
        with pytest.raises(TraceSchemaError, match="duplicate span id"):
            validate_trace_lines([json.dumps(header)] + lines[1:] + [lines[-1]])

    def test_non_json_rejected(self):
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_trace_lines(["{nope"])

    def test_negative_duration_rejected(self):
        bad = {
            "type": "span", "id": 0, "parent": None, "name": "x",
            "depth": 0, "start": 2.0, "end": 1.0, "duration": -1.0,
            "attrs": {},
        }
        header = {"type": "meta", "schema": "repro.trace/v1", "spans": 1}
        with pytest.raises(TraceSchemaError):
            validate_trace_lines([json.dumps(header), json.dumps(bad)])


class TestBenchKernelsSchema:
    def _payload(self):
        return {
            "schema_version": 2,
            "benchmark": "kernel-backend-shootout",
            "universe": 1000,
            "array_size": 100,
            "kernels": {"scalar": "scalar", "numpy": "numpy"},
            "seconds_per_call": {"scalar": 1e-3, "numpy": 1e-4},
            "speedup_numpy_vs_scalar": 10.0,
            "speedup_bitset_vs_scalar": 5.0,
        }

    def test_valid_payload_passes(self):
        validate_bench_kernels(self._payload())

    def test_wrong_version_rejected(self):
        payload = self._payload()
        payload["schema_version"] = 1
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_bench_kernels(payload)

    def test_kernels_must_cover_timings(self):
        payload = self._payload()
        del payload["kernels"]["numpy"]
        with pytest.raises(TraceSchemaError, match="kernels"):
            validate_bench_kernels(payload)

    def test_nonpositive_timing_rejected(self):
        payload = self._payload()
        payload["seconds_per_call"]["scalar"] = 0.0
        with pytest.raises(TraceSchemaError, match="seconds_per_call"):
            validate_bench_kernels(payload)


class TestMatchIntegration:
    """match() emits the documented spans and counters."""

    @pytest.mark.parametrize("algorithm", ["GQL", "CFL", "CECI", "DP"])
    def test_phase_spans_present(self, algorithm):
        tracer = Tracer()
        with tracing(tracer):
            match(PAPER_QUERY, PAPER_DATA, algorithm=algorithm)
        names = {s.name for s in tracer.spans}
        assert {"match", "filter", "order", "enumerate"} <= names

    def test_phase_spans_cover_match_span(self):
        tracer = Tracer()
        with tracing(tracer):
            match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        total = tracer.total_seconds("match")
        phases = sum(
            tracer.total_seconds(name)
            for name in ("filter", "order", "enumerate")
        )
        assert phases <= total
        # resolve/assembly glue between the phases is a sliver of the run
        assert phases >= 0.5 * total

    def test_metrics_attached_to_result(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="DP")
        counters = result.metrics.counters
        assert counters["enumerate.recursion_calls"] == result.stats.recursion_calls
        assert counters["filter.candidates_final"] >= 0
        assert result.metrics.filter_stages  # DP records ldf + 3 phases
        assert set(result.metrics.phase_seconds) == {"filter", "order", "enumerate"}

    def test_trace_valid_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracing(tracer):
            match(PAPER_QUERY, PAPER_DATA, algorithm="CECI")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        summary = validate_trace_file(str(path))
        assert summary["names"]["match"] == 1

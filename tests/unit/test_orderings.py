"""Unit tests for all seven ordering methods plus the spectrum sampler."""

import numpy as np
import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.filtering import GraphQLFilter, LDFFilter
from repro.graph import Graph, erdos_renyi_graph, extract_query
from repro.ordering import (
    CECIOrdering,
    CFLOrdering,
    DPisoOrdering,
    GraphQLOrdering,
    QuickSIOrdering,
    RandomOrdering,
    RIOrdering,
    VF2ppOrdering,
    random_connected_order,
    sample_orders,
    validate_order,
)

ALL_ORDERINGS = [
    QuickSIOrdering(),
    GraphQLOrdering(),
    CFLOrdering(),
    CECIOrdering(),
    DPisoOrdering(),
    RIOrdering(),
    VF2ppOrdering(),
]


@pytest.fixture(scope="module")
def candidates():
    return GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)


@pytest.fixture(scope="module")
def random_instance():
    data = erdos_renyi_graph(120, 6.0, 3, seed=31)
    query = extract_query(data, 8, seed=5)
    cand = GraphQLFilter().run(query, data)
    return query, data, cand


class TestValidateOrder:
    def test_accepts_connected_permutation(self, paper_query):
        validate_order(paper_query, [0, 1, 2, 3])

    def test_rejects_non_permutation(self, paper_query):
        with pytest.raises(ValueError, match="permutation"):
            validate_order(paper_query, [0, 1, 1, 3])

    def test_rejects_disconnected_prefix(self):
        # Path 0-1-2-3: order [0, 3, ...] has 3 with no backward neighbor.
        g = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        with pytest.raises(ValueError, match="backward neighbor"):
            validate_order(g, [0, 3, 2, 1])


@pytest.mark.parametrize("ordering", ALL_ORDERINGS, ids=lambda o: o.name)
class TestAllOrderingsValid:
    def test_paper_instance(self, ordering, candidates):
        phi = ordering.order(PAPER_QUERY, PAPER_DATA, candidates)
        validate_order(PAPER_QUERY, phi)

    def test_random_instance(self, ordering, random_instance):
        query, data, cand = random_instance
        phi = ordering.order(query, data, cand)
        validate_order(query, phi)

    def test_deterministic(self, ordering, random_instance):
        query, data, cand = random_instance
        assert ordering.order(query, data, cand) == ordering.order(
            query, data, cand
        )


class TestQuickSI:
    def test_starts_with_lightest_edge(self):
        # Labels: pair (0,1) appears once, pair (0,0) appears many times.
        data = Graph(
            labels=[0, 0, 0, 0, 1],
            edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3), (3, 4)],
        )
        query = Graph(labels=[0, 0, 1], edges=[(0, 1), (1, 2)])
        phi = QuickSIOrdering().order(query, data)
        # Edge (1, 2) has label pair (0, 1): globally rarest; vertex 2
        # (label 1, weight 1) enters before vertex 1 (label 0, weight 4).
        assert phi[:2] == [2, 1]

    def test_ignores_candidates(self, candidates):
        a = QuickSIOrdering().order(PAPER_QUERY, PAPER_DATA, None)
        b = QuickSIOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert a == b


class TestGraphQLOrdering:
    def test_starts_with_smallest_candidate_set(self, candidates):
        phi = GraphQLOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert phi[0] == 0  # C(u0) = {v0} is the unique minimum.

    def test_requires_candidates(self):
        with pytest.raises(ValueError, match="requires candidate"):
            GraphQLOrdering().order(PAPER_QUERY, PAPER_DATA, None)

    def test_greedy_min_at_each_step(self, random_instance):
        query, data, cand = random_instance
        phi = GraphQLOrdering().order(query, data, cand)
        placed = {phi[0]}
        for u in phi[1:]:
            frontier = {
                w
                for p in placed
                for w in query.neighbors(p).tolist()
                if w not in placed
            }
            assert cand.size(u) == min(cand.size(w) for w in frontier)
            placed.add(u)


class TestCFLOrdering:
    def test_root_first(self, candidates):
        phi = CFLOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert phi[0] == 0

    def test_paths_stay_contiguous(self, candidates):
        # With q_t paths (0,1,3) and (0,2), φ is a concatenation of path
        # segments: either [0,1,3,2] or [0,2,1,3].
        phi = CFLOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert phi in ([0, 1, 3, 2], [0, 2, 1, 3])


class TestCECIOrdering:
    def test_is_bfs_order(self, candidates):
        phi = CECIOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert phi == [0, 1, 2, 3]


class TestDPiso:
    def test_degree_one_vertices_last(self):
        data = erdos_renyi_graph(100, 6.0, 2, seed=41)
        # Query: triangle with two pendant vertices.
        query = Graph(
            labels=[0, 1, 0, 1, 0],
            edges=[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)],
        )
        cand = LDFFilter().run(query, data)
        phi = DPisoOrdering().order(query, data, cand)
        assert set(phi[-2:]) == {3, 4}

    def test_adaptive_state_consistency(self, candidates):
        state = DPisoOrdering().adaptive_state(PAPER_QUERY, PAPER_DATA, candidates)
        assert sorted(state.position) == [0, 1, 2, 3]
        assert len(state.weights) == 4
        # Weight of a leaf-ish candidate is >= 0 and root weight counts paths.
        assert state.estimated_work(0, candidates[0]) >= 0

    def test_estimated_work_sums_candidates(self, candidates):
        state = DPisoOrdering().adaptive_state(PAPER_QUERY, PAPER_DATA, candidates)
        full = state.estimated_work(1, candidates[1])
        half = state.estimated_work(1, candidates[1][:1])
        assert full >= half >= 0


class TestRI:
    def test_starts_with_max_degree(self, paper_query):
        phi = RIOrdering().order(paper_query, PAPER_DATA)
        assert paper_query.degree(phi[0]) == max(
            paper_query.degree(u) for u in paper_query.vertices()
        )

    def test_prefers_more_backward_neighbors(self):
        # Kite: 0-1-2 triangle, 3 attached to 0 and 1, 4 attached to 3.
        query = Graph(
            labels=[0] * 5,
            edges=[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (3, 4)],
        )
        phi = RIOrdering().order(query, Graph(labels=[0], edges=[]))
        placed = phi[:2]
        # The third vertex must be adjacent to both of the first two.
        third = phi[2]
        assert all(query.has_edge(third, w) for w in placed)

    def test_purely_structural(self, candidates):
        a = RIOrdering().order(PAPER_QUERY, PAPER_DATA)
        b = RIOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        assert a == b


class TestVF2pp:
    def test_root_is_rarest_label(self, paper_query):
        phi = VF2ppOrdering().order(paper_query, PAPER_DATA)
        # Label A occurs once in the data graph; u0 is the A vertex.
        assert phi[0] == 0

    def test_level_by_level(self, paper_query):
        from repro.graph.ops import bfs_tree

        phi = VF2ppOrdering().order(paper_query, PAPER_DATA)
        tree = bfs_tree(paper_query, phi[0])
        depths = [tree.depth[u] for u in phi]
        assert depths == sorted(depths)


class TestSpectrum:
    def test_random_connected_order_valid(self, paper_query):
        rng = np.random.default_rng(0)
        for _ in range(20):
            validate_order(paper_query, random_connected_order(paper_query, rng))

    def test_sample_orders_distinct(self, paper_query):
        orders = list(sample_orders(paper_query, 10, seed=1))
        assert len(orders) == len({tuple(o) for o in orders})

    def test_sample_orders_stops_when_exhausted(self):
        g = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        # A path of 3 vertices has only 4 connected orders.
        orders = list(sample_orders(g, 100, seed=2))
        assert len(orders) <= 4

    def test_random_ordering_class(self, paper_query):
        o = RandomOrdering(seed=5)
        validate_order(paper_query, o.order(paper_query, PAPER_DATA))

    def test_seeded_reproducibility(self, paper_query):
        a = list(sample_orders(paper_query, 5, seed=9))
        b = list(sample_orders(paper_query, 5, seed=9))
        assert a == b

"""Unit tests for the parallel study runner."""

import pytest

from repro.study import (
    build_query_set,
    load_dataset,
    run_algorithm_on_set,
    run_algorithm_on_set_parallel,
)


@pytest.fixture(scope="module")
def workload():
    data = load_dataset("ye", scale=0.3)
    qs = build_query_set(data, "ye", 6, None, 5, seed=13)
    return data, qs


class TestParallelRunner:
    def test_matches_sequential_results(self, workload):
        data, qs = workload
        sequential = run_algorithm_on_set(
            "GQL-opt", data, qs.queries, time_limit=10.0
        )
        parallel = run_algorithm_on_set_parallel(
            "GQL-opt", data, qs.queries, time_limit=10.0, workers=2
        )
        assert [r.num_matches for r in parallel.records] == [
            r.num_matches for r in sequential.records
        ]
        assert [r.solved for r in parallel.records] == [
            r.solved for r in sequential.records
        ]

    def test_records_in_query_order(self, workload):
        data, qs = workload
        summary = run_algorithm_on_set_parallel(
            "RI-opt", data, qs.queries, time_limit=10.0, workers=2
        )
        assert [r.query_index for r in summary.records] == list(
            range(len(qs.queries))
        )

    def test_glasgow_supported(self, workload):
        data, qs = workload
        summary = run_algorithm_on_set_parallel(
            "GLW", data, qs.queries, time_limit=10.0, workers=2
        )
        assert summary.num_queries == len(qs.queries)

    def test_accepts_specs(self, workload):
        # Specs pickle now (kernels drop identity-keyed caches at the
        # process boundary), so the runner takes them directly and the
        # records match the sequential runner's.
        data, qs = workload
        from repro.core import get_algorithm

        spec = get_algorithm("GQL-opt")
        sequential = run_algorithm_on_set(
            spec, data, qs.queries, time_limit=10.0
        )
        parallel = run_algorithm_on_set_parallel(
            spec, data, qs.queries, time_limit=10.0, workers=2
        )
        assert parallel.algorithm == sequential.algorithm == spec.name
        assert [r.num_matches for r in parallel.records] == [
            r.num_matches for r in sequential.records
        ]

    def test_rejects_non_algorithms(self, workload):
        data, qs = workload
        with pytest.raises(TypeError, match="AlgorithmSpec"):
            run_algorithm_on_set_parallel(
                123, data, qs.queries  # type: ignore[arg-type]
            )

    def test_rejects_zero_workers(self, workload):
        data, qs = workload
        with pytest.raises(ValueError, match="worker"):
            run_algorithm_on_set_parallel(
                "RI-opt", data, qs.queries, workers=0
            )

    def test_single_worker_works(self, workload):
        data, qs = workload
        summary = run_algorithm_on_set_parallel(
            "RI-opt", data, qs.queries, time_limit=10.0, workers=1
        )
        assert summary.num_queries == len(qs.queries)

"""Unit tests for the fan-out building blocks (repro.parallel.executor)."""

import pytest

from repro.enumeration.stats import EnumerationStats
from repro.parallel import (
    DEFAULT_CHUNKS,
    chunk_bounds,
    merge_chunks,
    resolve_workers,
)
from repro.parallel.worker import ChunkResult


def make_chunk(index, embeddings, solved=True, calls=None):
    stats = EnumerationStats()
    # Every chunk pays the one root push the sequential run pays once.
    stats.recursion_calls = (
        calls if calls is not None else len(embeddings) + 1
    )
    return ChunkResult(
        index=index,
        num_matches=len(embeddings),
        solved=solved,
        embeddings=list(embeddings),
        stats=stats,
    )


class TestChunkBounds:
    def test_covers_range_in_order(self):
        bounds = chunk_bounds(100, DEFAULT_CHUNKS)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_never_more_chunks_than_roots(self):
        assert len(chunk_bounds(3, 16)) == 3
        assert all(hi - lo == 1 for lo, hi in chunk_bounds(3, 16))

    def test_all_windows_non_empty(self):
        for roots in (1, 2, 15, 16, 17, 1000):
            for lo, hi in chunk_bounds(roots, 16):
                assert hi > lo

    def test_independent_of_worker_count(self):
        # The chunk grid depends on roots alone — the determinism
        # contract that makes results invariant across n_workers.
        assert chunk_bounds(97, 16) == chunk_bounds(97, 16)


class TestMergeChunks:
    def test_concatenates_in_index_order(self):
        chunks = [
            make_chunk(1, [(3,), (4,)]),
            make_chunk(0, [(1,), (2,)]),
        ]
        outcome = merge_chunks(chunks, match_limit=None, store_limit=10)
        assert outcome.embeddings == [(1,), (2,), (3,), (4,)]
        assert outcome.num_matches == 4
        assert outcome.solved

    def test_root_push_correction(self):
        chunks = [make_chunk(i, [(i,)]) for i in range(4)]
        outcome = merge_chunks(chunks, match_limit=None, store_limit=10)
        # Each chunk reported len+1 = 2 calls; sequential pays the root
        # push once, so the merged total is 4*2 - 3.
        assert outcome.stats.recursion_calls == 5

    def test_match_limit_truncates_inside_boundary_chunk(self):
        chunks = [
            make_chunk(0, [(1,), (2,)]),
            make_chunk(1, [(3,), (4,)]),
            make_chunk(2, [(5,)]),
        ]
        outcome = merge_chunks(chunks, match_limit=3, store_limit=10)
        assert outcome.num_matches == 3
        assert outcome.embeddings == [(1,), (2,), (3,)]
        assert outcome.solved

    def test_limit_satisfied_beats_unsolved(self):
        # A chunk that reached the limit *and* later died on budget
        # reports solved=True: the sequential run would have stopped at
        # the limit before ever hitting the budget.
        chunks = [
            make_chunk(0, [(1,), (2,)], solved=False),
            make_chunk(1, [(3,)]),
        ]
        outcome = merge_chunks(chunks, match_limit=2, store_limit=10)
        assert outcome.solved
        assert outcome.num_matches == 2

    def test_unsolved_chunk_ends_merge(self):
        chunks = [
            make_chunk(0, [(1,)]),
            make_chunk(1, [(2,)], solved=False),
            make_chunk(2, [(3,)]),
        ]
        outcome = merge_chunks(chunks, match_limit=None, store_limit=10)
        assert not outcome.solved
        assert outcome.embeddings == [(1,), (2,)]

    def test_store_limit_keeps_prefix(self):
        chunks = [
            make_chunk(0, [(1,), (2,)]),
            make_chunk(1, [(3,), (4,)]),
        ]
        outcome = merge_chunks(chunks, match_limit=None, store_limit=3)
        assert outcome.embeddings == [(1,), (2,), (3,)]
        assert outcome.num_matches == 4


class TestResolveWorkers:
    def test_none_defaults_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError):
            resolve_workers(None)

"""Pickle round-trips for plans, prepared queries, specs and kernels.

The parallel fan-out ships compiled :class:`MatchPlan`s and
:class:`PreparedQuery` artifacts to worker processes, so everything a
plan closes over must survive ``pickle`` — including the kernel objects
whose caches are keyed by ``id()`` and therefore must be dropped, not
serialized, at the process boundary.
"""

import pickle

import pytest

from repro.core.algorithms import PRESETS
from repro.core.plan import compile_plan, prepare_query, run_plan
from repro.graph.generators import rmat_graph
from repro.graph.query_gen import extract_query
from repro.obs.metrics import Metrics
from repro.utils.kernels import BitsetKernel, QFilterKernel, available_kernels


@pytest.fixture(scope="module")
def workload():
    data = rmat_graph(300, 8.0, 3, seed=11, clustering=0.1)
    query = extract_query(data, 5, seed=2)
    return query, data


class TestSpecAndPlanPickling:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_plan_round_trips(self, name, workload):
        query, data = workload
        plan = compile_plan(name, query, data)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.algorithm.name == plan.algorithm.name
        assert clone.fingerprint == plan.fingerprint
        assert clone.aux_scope == plan.aux_scope
        assert clone.engine_policy == plan.engine_policy

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_unpickled_plan_still_answers(self, name, workload):
        query, data = workload
        plan = compile_plan(name, query, data)
        expected, _ = run_plan(
            plan, query, data, match_limit=200, store_limit=200
        )
        clone = pickle.loads(pickle.dumps(plan))
        result, _ = run_plan(
            clone, query, data, match_limit=200, store_limit=200
        )
        assert result.num_matches == expected.num_matches
        assert result.embeddings == expected.embeddings

    def test_prepared_query_round_trips(self, workload):
        query, data = workload
        plan = compile_plan("GQL-opt", query, data)
        prepared = prepare_query(plan, query, data, Metrics())
        clone = pickle.loads(pickle.dumps(prepared))
        expected, _ = run_plan(
            plan, query, data, prepared=prepared,
            match_limit=200, store_limit=200,
        )
        result, _ = run_plan(
            plan, query, data, prepared=clone,
            match_limit=200, store_limit=200,
        )
        assert result.num_matches == expected.num_matches
        assert result.embeddings == expected.embeddings


class TestKernelPickling:
    def test_bitset_kernel_drops_cache(self, workload):
        query, data = workload
        kernel = BitsetKernel()
        # Populate the id-keyed cache, then round-trip: the clone must
        # start cold — cached ids from the parent process would alias
        # arbitrary objects in the child.
        kernel.intersect(data.neighbors(0), data.neighbors(1))
        assert kernel._cache
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone._cache == {}

    def test_qfilter_kernel_keeps_block_bits(self):
        kernel = QFilterKernel()
        clone = pickle.loads(pickle.dumps(kernel))
        assert (
            clone._index.block_bits == kernel._index.block_bits
        )

    @pytest.mark.parametrize(
        "name", [k for k in available_kernels() if k != "auto"]
    )
    def test_registry_kernels_round_trip(self, name, workload):
        from repro.utils.kernels import get_kernel

        query, data = workload
        kernel = get_kernel(name)
        clone = pickle.loads(pickle.dumps(kernel))
        expected = kernel.intersect(data.neighbors(0), data.neighbors(1))
        got = clone.intersect(data.neighbors(0), data.neighbors(1))
        assert list(got) == list(expected)

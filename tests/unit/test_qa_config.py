"""Unit tests for the differential harness Config, n_workers axis included."""

from repro.qa.differential import (
    Config,
    default_engines,
    run_config,
)
from repro.qa.generator import plant_case


class TestConfigRoundTrip:
    def test_defaults_round_trip(self):
        config = Config()
        assert Config.from_dict(config.to_dict()) == config

    def test_n_workers_round_trips(self):
        config = Config(algorithm="GQLfs", engine="iterative", n_workers=2)
        clone = Config.from_dict(config.to_dict())
        assert clone == config
        assert clone.n_workers == 2

    def test_legacy_payload_defaults_to_sequential(self):
        # Corpus records written before the n_workers axis replay
        # unchanged: missing key means sequential.
        config = Config.from_dict(
            {"algorithm": "GQL", "kernel": None, "mode": "oneshot"}
        )
        assert config.n_workers is None

    def test_label_shows_worker_count(self):
        assert "w2" in Config(algorithm="GQL", n_workers=2).label()
        assert "w" not in Config(algorithm="GQL").label()

    def test_storage_round_trips(self):
        config = Config(algorithm="GQL", storage="rgf")
        clone = Config.from_dict(config.to_dict())
        assert clone == config
        assert clone.storage == "rgf"

    def test_legacy_payload_defaults_to_in_memory(self):
        config = Config.from_dict(
            {"algorithm": "GQL", "kernel": None, "mode": "oneshot"}
        )
        assert config.storage is None

    def test_label_shows_storage_backend(self):
        assert "~shm" in Config(algorithm="GQL", storage="shm").label()
        assert "~" not in Config(algorithm="GQL").label()


class TestDefaultEngines:
    def test_recursive_engine_is_opt_in(self):
        # The retired reference engine stays in the registry but out of
        # the default sweep.
        assert default_engines() == ["iterative"]


class TestParallelConfigRuns:
    def test_parallel_config_matches_sequential(self):
        case = plant_case(5, max_data=24)
        seq = run_config(case.query, case.data, Config(algorithm="GQL"))
        par = run_config(
            case.query, case.data, Config(algorithm="GQL", n_workers=2)
        )
        assert par.count == seq.count
        assert par.emb_list == seq.emb_list

    def test_session_mode_accepts_workers(self):
        case = plant_case(9, max_data=24)
        seq = run_config(
            case.query, case.data, Config(algorithm="GQL", mode="session")
        )
        par = run_config(
            case.query,
            case.data,
            Config(algorithm="GQL", mode="session", n_workers=2),
        )
        assert par.count == seq.count
        assert par.emb_list == seq.emb_list
        assert par.repeat_list == seq.repeat_list


class TestStorageConfigRuns:
    def test_storage_backends_match_in_memory(self):
        case = plant_case(5, max_data=24)
        base = run_config(case.query, case.data, Config(algorithm="GQL"))
        for storage in ("rgf", "shm"):
            other = run_config(
                case.query, case.data,
                Config(algorithm="GQL", storage=storage),
            )
            assert other.count == base.count
            assert other.emb_list == base.emb_list

    def test_unknown_storage_backend_rejected(self):
        import pytest

        case = plant_case(5, max_data=24)
        with pytest.raises(ValueError, match="storage"):
            run_config(
                case.query, case.data,
                Config(algorithm="GQL", storage="floppy"),
            )

    def test_run_case_sweeps_storage_clean(self):
        from repro.qa.differential import run_case

        case = plant_case(13, max_data=24)
        divergences = run_case(
            case,
            presets=["GQL"],
            kernels=[],
            engines=["iterative"],
            worker_counts=(),
            oracle=False,
            metamorphic=False,
        )
        assert divergences == []

"""Unit tests for the JSON repro corpus (schema, round-trip, replay)."""

import json

import pytest

from repro.graph import Graph
from repro.qa import (
    CORPUS_SCHEMA,
    graph_from_json,
    graph_to_json,
    iter_corpus,
    load_repro,
    plant_case,
    replay_repro,
    save_repro,
)
from repro.qa.corpus import corpus_summary, make_record

QUERY = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
DATA = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3)])


def _record(**overrides):
    base = dict(
        kind="count_mismatch",
        query=QUERY,
        data=DATA,
        config_a={"algorithm": "GQL", "kernel": None, "mode": "oneshot"},
        config_b={"algorithm": "CECI", "kernel": None, "mode": "oneshot"},
        seed=42,
        detail="unit fixture",
    )
    base.update(overrides)
    return make_record(**base)


class TestGraphJson:
    def test_round_trip(self):
        for graph in (QUERY, DATA, plant_case(2).data):
            assert graph_from_json(graph_to_json(graph)) == graph

    def test_json_serializable(self):
        payload = graph_to_json(DATA)
        assert graph_from_json(json.loads(json.dumps(payload))) == DATA


class TestRecords:
    def test_make_record_shape(self):
        record = _record()
        assert record["schema"] == CORPUS_SCHEMA
        assert record["kind"] == "count_mismatch"
        assert record["planted"] is None
        assert graph_from_json(record["query"]) == QUERY

    def test_make_record_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown divergence kind"):
            _record(kind="cosmic_rays")

    def test_save_load_round_trip(self, tmp_path):
        record = _record()
        path = save_repro(str(tmp_path / "sub" / "repro.json"), record)
        assert load_repro(path) == record

    def test_save_rejects_wrong_schema(self, tmp_path):
        record = _record()
        record["schema"] = "repro.qa/v0"
        with pytest.raises(ValueError, match="refusing to save"):
            save_repro(str(tmp_path / "bad.json"), record)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v1"}))
        with pytest.raises(ValueError, match="unsupported schema"):
            load_repro(str(path))

    def test_load_rejects_missing_keys(self, tmp_path):
        record = _record()
        del record["data"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="missing 'data'"):
            load_repro(str(path))


class TestCorpusDirectory:
    def test_iter_corpus_sorted_and_filtered(self, tmp_path):
        for name in ("b.json", "a.json", "notes.txt"):
            save_repro(str(tmp_path / name), _record()) if name.endswith(
                ".json"
            ) else (tmp_path / name).write_text("ignored")
        paths = [p for p, _ in iter_corpus(str(tmp_path))]
        assert [p.rsplit("/", 1)[1] for p in paths] == ["a.json", "b.json"]

    def test_iter_corpus_missing_directory(self, tmp_path):
        assert list(iter_corpus(str(tmp_path / "absent"))) == []

    def test_corpus_summary(self, tmp_path):
        save_repro(str(tmp_path / "one.json"), _record())
        (row,) = corpus_summary(str(tmp_path))
        assert row["kind"] == "count_mismatch"
        assert row["query_vertices"] == QUERY.num_vertices
        assert row["data_vertices"] == DATA.num_vertices


class TestReplay:
    def test_healthy_comparison_does_not_reproduce(self):
        # GQL and CECI agree on this pair, so the recorded "divergence"
        # is gone — exactly what a fixed bug looks like.
        assert replay_repro(_record()) is False

    def test_impossible_algorithm_reproduces_as_crash(self):
        record = _record(kind="crash")
        record["config_a"]["algorithm"] = "NO-SUCH-PRESET"
        assert replay_repro(record) is True

"""Unit tests for the planted-case generator and metamorphic transforms."""

import numpy as np
import pytest

from repro.baselines import brute_force_matches
from repro.core import verify_embedding
from repro.graph import Graph, query_fingerprint
from repro.graph.ops import connected
from repro.qa import (
    TRANSFORMS,
    apply_transform,
    permute_label_alphabet,
    plant_case,
    renumber_vertices,
    shuffle_edges,
)
from repro.qa.generator import random_query

SEEDS = range(20)


class TestPlantCase:
    def test_deterministic(self):
        for seed in SEEDS:
            a, b = plant_case(seed), plant_case(seed)
            assert a.query == b.query
            assert a.data == b.data
            assert a.planted == b.planted

    def test_planted_is_valid_embedding(self):
        for seed in SEEDS:
            case = plant_case(seed)
            assert verify_embedding(case.query, case.data, case.planted)

    def test_planted_hosts_distinct(self):
        for seed in SEEDS:
            case = plant_case(seed)
            assert len(set(case.planted)) == case.query.num_vertices

    def test_size_bounds_respected(self):
        for seed in SEEDS:
            case = plant_case(seed, min_query=3, max_query=5, max_data=25)
            assert 3 <= case.query.num_vertices <= 5
            assert case.data.num_vertices <= 25
            assert connected(case.query)

    def test_num_labels_override(self):
        case = plant_case(0, num_labels=2)
        assert case.num_labels == 2
        assert int(case.data.labels.max()) < 2

    def test_random_query_connected(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            query = random_query(rng, 6, 3)
            assert connected(query)
            assert query.num_vertices == 6


class TestTransforms:
    def test_relabel_preserves_matches(self):
        case = plant_case(3, max_data=16)
        q2, d2 = permute_label_alphabet(99, case.query, case.data)
        assert brute_force_matches(q2, d2) == brute_force_matches(
            case.query, case.data
        )

    def test_renumber_maps_matches_through_perm(self):
        case = plant_case(4, max_data=16)
        d2, perm = renumber_vertices(case.data, 7)
        expected = {
            tuple(perm[v] for v in emb)
            for emb in brute_force_matches(case.query, case.data)
        }
        assert brute_force_matches(case.query, d2) == expected

    def test_renumber_preserves_query_fingerprint(self):
        case = plant_case(5)
        renumbered, _ = renumber_vertices(case.query, 11)
        assert query_fingerprint(renumbered) == query_fingerprint(case.query)

    def test_edge_shuffle_builds_equal_graph(self):
        case = plant_case(6)
        assert shuffle_edges(case.data, 13) == case.data
        assert shuffle_edges(case.query, 13) == case.query

    def test_apply_transform_dispatch(self):
        case = plant_case(8, max_data=16)
        for name in TRANSFORMS:
            q2, d2, perm = apply_transform(name, case.query, case.data, 17)
            assert isinstance(q2, Graph) and isinstance(d2, Graph)
            if name == "renumber":
                assert sorted(perm) == list(case.data.vertices())
            else:
                assert perm is None

    def test_apply_transform_unknown_name(self):
        case = plant_case(0)
        with pytest.raises(ValueError, match="unknown transform"):
            apply_transform("mirror", case.query, case.data, 0)

"""Unit tests for the QA harness's mutation axis.

Script serialization, batch sanitization, the planted mutation-script
generator, the mutate-then-match differential, and the shrinker's
mutation pass.
"""

import pytest

from repro.dynamic import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    DynamicGraph,
    Mutation,
    sanitize_batch,
)
from repro.dynamic.mutations import script_from_json, script_to_json
from repro.graph.graph import Graph
from repro.qa import (
    DIVERGENCE_KINDS,
    MUTATION_KINDS,
    Config,
    plant_case,
    plant_mutation_script,
    run_case,
    run_mutation_config,
)
from repro.qa import shrink as shrink_module
from repro.qa.shrink import shrink_case


# ----------------------------------------------------------------------
# Vocabulary and serialization
# ----------------------------------------------------------------------


def test_mutation_rejects_unknown_ops():
    with pytest.raises(ValueError, match="unknown mutation op"):
        Mutation("drop_vertex", 1)


def test_script_json_round_trip():
    script = (
        (Mutation(ADD_EDGE, 0, 1), Mutation(ADD_VERTEX, 3)),
        (Mutation(REMOVE_EDGE, 2, 0),),
    )
    payload = script_to_json(script)
    assert payload == [[["add_edge", 0, 1], ["add_vertex", 3]], [["remove_edge", 2, 0]]]
    assert script_from_json(payload) == script
    assert script_from_json(None) == ()


def test_sanitize_batch_drops_invalid_ops_and_tracks_growth():
    batch = (
        Mutation(ADD_EDGE, 0, 5),      # out of range for n=4: dropped
        Mutation(ADD_VERTEX, 2),       # id 4 exists from here on
        Mutation(ADD_EDGE, 0, 4),      # now in range: kept
        Mutation(ADD_EDGE, 3, 3),      # self loop: dropped
        Mutation(REMOVE_EDGE, -1, 2),  # negative endpoint: dropped
        Mutation(ADD_VERTEX, -1),      # negative label: dropped, no growth
        Mutation(ADD_EDGE, 1, 5),      # 5 never materialized: dropped
    )
    kept, n = sanitize_batch(batch, 4)
    assert kept == (Mutation(ADD_VERTEX, 2), Mutation(ADD_EDGE, 0, 4))
    assert n == 5
    # Sanitized batches always apply cleanly.
    dyn = DynamicGraph(Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3)]))
    dyn.apply(kept)
    assert dyn.num_vertices == 5 and dyn.has_edge(0, 4)


def test_config_mutations_round_trip_and_label():
    script = ((Mutation(ADD_EDGE, 0, 1),), (Mutation(ADD_VERTEX, 2), Mutation(ADD_EDGE, 2, 3)))
    config = Config(mode="session", mutations=script)
    assert Config.from_dict(config.to_dict()) == config
    assert "+mut3" in config.label()
    # Legacy payloads (pre-mutation corpus records) parse to the static axis.
    payload = config.to_dict()
    del payload["mutations"]
    legacy = Config.from_dict(payload)
    assert legacy.mutations is None
    assert "+mut" not in legacy.label()


def test_mutation_kinds_are_divergence_kinds():
    assert set(MUTATION_KINDS) <= set(DIVERGENCE_KINDS)


# ----------------------------------------------------------------------
# The planted script generator
# ----------------------------------------------------------------------


def test_plant_mutation_script_is_deterministic():
    case = plant_case(11, max_data=20)
    assert plant_mutation_script(case) == plant_mutation_script(case)
    assert plant_mutation_script(case, seed=1) != plant_mutation_script(case, seed=2)


def test_plant_mutation_script_final_batch_plants_the_query():
    case = plant_case(23, max_data=20)
    script = plant_mutation_script(case, num_batches=3)
    assert len(script) == 3
    final = script[-1]
    spawns = [m for m in final if m.op == ADD_VERTEX]
    wires = [m for m in final if m.op == ADD_EDGE]
    assert len(spawns) == case.query.num_vertices
    assert len(wires) == case.query.num_edges

    # Apply the whole script; the fresh vertices must host an exact copy
    # of the query (labels and adjacency).
    dyn = DynamicGraph(case.data)
    n = dyn.num_vertices
    for batch in script:
        kept, n = sanitize_batch(batch, n)
        dyn.apply(kept)
    first_new = dyn.num_vertices - case.query.num_vertices
    hosts = list(range(first_new, dyn.num_vertices))
    for u in range(case.query.num_vertices):
        assert dyn.label(hosts[u]) == case.query.label(u)
    for u, w in case.query.edges():
        assert dyn.has_edge(hosts[u], hosts[w])


# ----------------------------------------------------------------------
# The differential and its shrinker pass
# ----------------------------------------------------------------------


def test_run_mutation_config_is_clean_on_a_planted_case():
    case = plant_case(7, max_data=18)
    script = plant_mutation_script(case, num_batches=2)
    config = Config(mode="session", algorithm="GQL", mutations=script)
    assert run_mutation_config(case.query, case.data, config) is None


def test_run_case_with_mutations_is_clean():
    case = plant_case(3, max_data=16)
    script = plant_mutation_script(case, num_batches=2)
    divergences = run_case(case, mutations=script)
    assert divergences == []


def test_shrinker_minimizes_the_mutation_script(monkeypatch):
    case = plant_case(5, max_data=14)
    needle = ["add_edge", 0, 1]
    script = [
        [["add_vertex", 0], ["add_edge", 2, 3]],
        [needle, ["remove_edge", 1, 2]],
        [["add_vertex", 1]],
    ]
    record = {
        "kind": "mutation_mismatch",
        "config_a": Config(mode="session").to_dict() | {"mutations": script},
    }

    def fake_reproduces(rec, query, data):
        mutations = rec["config_a"]["mutations"]
        return any(needle in batch for batch in mutations)

    monkeypatch.setattr(shrink_module, "divergence_reproduces", fake_reproduces)
    query, data, moves = shrink_case(record, case.query, case.data, max_seconds=None)
    assert moves > 0
    # The script shrank in place to (at most) the needle's batch — batch
    # deletion keeps at least one batch, op deletion strips the rest.
    final = record["config_a"]["mutations"]
    assert final == [[needle]]
    # Graph moves ran under the fake predicate too; both stay valid graphs.
    assert query.num_vertices >= 3 and data.num_vertices >= 1


def test_shrinker_leaves_static_records_untouched(monkeypatch):
    case = plant_case(5, max_data=14)
    record = {"kind": "count_mismatch", "config_a": Config().to_dict()}
    monkeypatch.setattr(
        shrink_module, "divergence_reproduces", lambda rec, q, d: False
    )
    query, data, moves = shrink_case(record, case.query, case.data)
    assert moves == 0
    assert record["config_a"]["mutations"] is None

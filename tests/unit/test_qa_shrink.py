"""Unit tests for the delta-debugging case shrinker."""

from repro.graph import Graph
from repro.graph.ops import connected
from repro.qa import plant_case, shrink_case
from repro.qa.corpus import make_record


def _crash_record(query, data):
    # An unknown preset raises on every input, so the "divergence"
    # reproduces on *any* (query, data) pair — the shrinker should be able
    # to take both graphs to their floors.
    return make_record(
        kind="crash",
        query=query,
        data=data,
        config_a={"algorithm": "NO-SUCH-PRESET", "kernel": None,
                  "mode": "oneshot"},
        detail="always reproduces",
    )


class TestShrinkCase:
    def test_non_reproducing_record_returned_unchanged(self):
        case = plant_case(1, max_data=16)
        record = make_record(
            kind="count_mismatch",
            query=case.query,
            data=case.data,
            config_a={"algorithm": "GQL", "kernel": None, "mode": "oneshot"},
            config_b={"algorithm": "CECI", "kernel": None, "mode": "oneshot"},
        )
        query, data, moves = shrink_case(record, case.query, case.data)
        assert moves == 0
        assert query == case.query and data == case.data

    def test_always_reproducing_record_shrinks_to_floor(self):
        case = plant_case(2, max_data=20)
        record = _crash_record(case.query, case.data)
        query, data, moves = shrink_case(record, case.query, case.data)
        assert moves > 0
        # Data floor: a single isolated vertex. Query floor: 3 vertices
        # (the framework's minimum), still connected.
        assert data.num_vertices == 1 and data.num_edges == 0
        assert query.num_vertices == 3
        assert connected(query)

    def test_time_box_stops_early(self):
        case = plant_case(3, max_data=30)
        record = _crash_record(case.query, case.data)
        query, data, moves = shrink_case(
            record, case.query, case.data, max_seconds=0.0
        )
        # The budget expires before any pass completes; inputs survive.
        assert query == case.query and data == case.data
        assert moves == 0

    def test_edge_only_shrink(self):
        # A record that reproduces iff the data graph has a triangle:
        # query = labeled triangle, config crashes only through matching —
        # emulate with crash record restricted by construction instead:
        # use a pair where removing edges keeps the crash reproducing.
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        record = _crash_record(triangle, triangle)
        query, data, moves = shrink_case(record, triangle, triangle)
        assert moves > 0
        assert data.num_edges == 0

    def test_shrunk_pair_still_reproduces(self):
        from repro.qa import divergence_reproduces

        case = plant_case(4, max_data=20)
        record = _crash_record(case.query, case.data)
        query, data, _ = shrink_case(record, case.query, case.data)
        assert divergence_reproduces(record, query, data)

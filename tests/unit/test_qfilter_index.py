"""Unit tests for the base-and-state (BSR) QFilter model."""

import pytest

from repro.utils.intersection import QFilterIndex, intersect_hybrid


class TestEncoding:
    def test_clustered_values_share_blocks(self):
        idx = QFilterIndex(block_bits=64)
        bases, states = idx.encode([0, 1, 5, 63])
        assert bases == [0]
        assert states == [(1 << 0) | (1 << 1) | (1 << 5) | (1 << 63)]

    def test_scattered_values_one_block_each(self):
        idx = QFilterIndex(block_bits=64)
        bases, states = idx.encode([0, 64, 128])
        assert bases == [0, 1, 2]
        assert states == [1, 1, 1]

    def test_block_bits_validation(self):
        with pytest.raises(ValueError):
            QFilterIndex(block_bits=3)
        with pytest.raises(ValueError):
            QFilterIndex(block_bits=1)

    def test_cache_by_identity(self):
        idx = QFilterIndex()
        lst = [1, 2, 3]
        idx.intersect(lst, [2])
        assert id(lst) in idx._cache

    def test_clear(self):
        idx = QFilterIndex()
        idx.intersect([1], [1])
        idx.clear()
        assert not idx._cache


class TestIntersection:
    def test_basic(self):
        assert QFilterIndex().intersect([1, 3, 5, 200], [3, 5, 6, 200]) == [3, 5, 200]

    def test_empty(self):
        idx = QFilterIndex()
        assert idx.intersect([], [1, 2]) == []
        assert idx.intersect([1, 2], []) == []

    def test_disjoint_blocks(self):
        assert QFilterIndex().intersect([0, 1], [300, 301]) == []

    def test_agrees_with_hybrid(self):
        import numpy as np

        rng = np.random.default_rng(5)
        idx = QFilterIndex()
        for _ in range(100):
            a = sorted(set(rng.integers(0, 1000, size=40).tolist()))
            b = sorted(set(rng.integers(0, 1000, size=40).tolist()))
            assert idx.intersect(a, b) == intersect_hybrid(a, b)

    def test_multi_intersect(self):
        idx = QFilterIndex()
        assert idx.multi_intersect([[1, 2, 3], [2, 3], [3, 9]]) == [3]

    def test_multi_empty_raises(self):
        with pytest.raises(ValueError):
            QFilterIndex().multi_intersect([])

    def test_small_block_size(self):
        idx = QFilterIndex(block_bits=4)
        assert idx.intersect([0, 3, 4, 7, 8], [3, 4, 8, 9]) == [3, 4, 8]

"""Unit tests for random-walk query extraction."""

import pytest

from repro.errors import InvalidQueryError
from repro.graph import (
    Graph,
    erdos_renyi_graph,
    extract_query,
    generate_query_set,
    rmat_graph,
)
from repro.graph.ops import connected
from repro.graph.query_gen import DENSE_THRESHOLD


@pytest.fixture(scope="module")
def host():
    # Clustered RMAT: has the dense pockets that dense query sets need
    # (plain Erdős–Rényi at this size has no d(q) >= 3 subgraphs).
    return rmat_graph(300, 6.0, 4, seed=17, clustering=0.3)


class TestExtractQuery:
    def test_size_and_connectivity(self, host):
        q = extract_query(host, 8, seed=1)
        assert q.num_vertices == 8
        assert connected(q)

    def test_dense_constraint(self, host):
        q = extract_query(host, 8, seed=2, density="dense")
        assert q.average_degree >= DENSE_THRESHOLD

    def test_sparse_constraint(self, host):
        q = extract_query(host, 8, seed=3, density="sparse")
        assert q.average_degree < DENSE_THRESHOLD

    def test_deterministic(self, host):
        assert extract_query(host, 6, seed=5) == extract_query(host, 6, seed=5)

    def test_labels_inherited(self, host):
        q = extract_query(host, 6, seed=7)
        assert q.label_set <= host.label_set

    def test_minimum_size(self, host):
        with pytest.raises(InvalidQueryError, match="at least 3"):
            extract_query(host, 2, seed=1)

    def test_too_large(self):
        g = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        with pytest.raises(InvalidQueryError, match="cannot extract"):
            extract_query(g, 10, seed=1)

    def test_edgeless_graph(self):
        g = Graph(labels=[0, 0, 0, 0], edges=[])
        with pytest.raises(InvalidQueryError, match="no edges"):
            extract_query(g, 3, seed=1)

    def test_small_component_start_terminates(self):
        # Regression: a walk starting inside a component smaller than the
        # request must give up (budget), not spin forever. Vertex degrees
        # bias sparse starts into the 3-cycle component.
        g = Graph(
            labels=[0] * 9,
            edges=[
                (0, 1), (1, 2), (2, 0),  # small component (degree 2)
                (3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6),
                (3, 7), (4, 7), (5, 8), (6, 8),  # big component
            ],
        )
        q = extract_query(g, 5, seed=1, density="sparse", max_attempts=500)
        assert q.num_vertices == 5

    def test_dense_needs_four_vertices(self, host):
        with pytest.raises(InvalidQueryError, match="at least 4"):
            extract_query(host, 3, seed=1, density="dense")

    def test_impossible_density_raises(self):
        # A tree has no dense (d >= 3) induced subgraphs.
        g = Graph(labels=[0] * 6, edges=[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
        with pytest.raises(InvalidQueryError, match="could not extract"):
            extract_query(g, 4, seed=1, density="dense", max_attempts=20)


class TestGenerateQuerySet:
    def test_count(self, host):
        qs = generate_query_set(host, 6, 5, seed=11)
        assert len(qs) == 5
        assert all(q.num_vertices == 6 for q in qs)

    def test_deterministic(self, host):
        a = generate_query_set(host, 5, 3, seed=13)
        b = generate_query_set(host, 5, 3, seed=13)
        assert a == b

    def test_density_respected(self, host):
        for q in generate_query_set(host, 8, 4, seed=19, density="dense"):
            assert q.average_degree >= DENSE_THRESHOLD

    def test_extension_stable_prefix(self, host):
        # Requesting more queries must keep the earlier ones identical
        # (each query has an independent derived seed).
        short = generate_query_set(host, 5, 3, seed=23)
        long = generate_query_set(host, 5, 6, seed=23)
        assert long[:3] == short

"""Unit tests for the component registry and preset tables."""

import pytest

from repro import available_algorithms, match
from repro.core.algorithms import PRESETS, algorithm_components, get_algorithm
from repro.core.registry import (
    FILTERS,
    LOCAL_CANDIDATES,
    ORDERINGS,
    TREE_SOURCES,
    ComponentRegistry,
    PresetDef,
    build_spec,
    describe_preset,
    get_registered_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.errors import ConfigurationError
from repro.filtering import GraphQLFilter
from repro.graph import Graph


class TestComponentRegistry:
    def test_register_and_create(self):
        reg = ComponentRegistry("widget")
        reg.register("a", lambda: "made-a")
        assert reg.create("a") == "made-a"
        assert "a" in reg
        assert "b" not in reg
        assert reg.names() == ["a"]

    def test_unknown_name_raises_with_kind_and_choices(self):
        reg = ComponentRegistry("widget")
        reg.register("a", lambda: None)
        with pytest.raises(ConfigurationError, match="widget.*'nope'.*a"):
            reg.create("nope")

    def test_factories_give_fresh_instances(self):
        first = FILTERS.create("GQL")
        second = FILTERS.create("GQL")
        assert isinstance(first, GraphQLFilter)
        assert first is not second


class TestBuiltinRegistries:
    def test_filter_lineup(self):
        for name in ("LDF", "NLF", "GQL", "CFL", "CECI", "DP", "STEADY"):
            assert name in FILTERS, name

    def test_ordering_lineup(self):
        for name in ("QSI", "GQL", "CFL", "CECI", "DP", "RI", "2PP"):
            assert name in ORDERINGS, name

    def test_lc_lineup(self):
        for name in ("ALG2", "2PP-LC", "ALG3", "ALG4", "ALG5"):
            assert name in LOCAL_CANDIDATES, name

    def test_tree_sources(self):
        assert "CFL" in TREE_SOURCES


class TestBuildSpec:
    def test_wires_components_by_name(self):
        spec = build_spec(PRESETS["GQLfs"])
        assert spec.name == "GQLfs"
        assert spec.filter.name == "GQL"
        assert spec.ordering.name == "GQL"
        assert spec.lc.name == "ALG5"
        assert spec.aux_scope == "all"
        assert spec.failing_sets

    def test_filterless_preset(self):
        spec = build_spec(PRESETS["QSI"])
        assert spec.filter is None

    def test_tree_scope_requires_tree_source(self):
        row = PresetDef(name="broken", filter="CFL", ordering="CFL",
                        lc="ALG4", aux_scope="tree")
        with pytest.raises(ConfigurationError, match="tree_source"):
            build_spec(row)

    def test_every_builtin_preset_builds(self):
        for name, row in PRESETS.items():
            spec = build_spec(row)
            assert spec.name == name

    def test_with_failing_sets(self):
        row = PRESETS["GQL-opt"].with_failing_sets()
        assert row.failing_sets and row.name == "GQL-optfs"
        named = PRESETS["GQL-opt"].with_failing_sets("XYZ")
        assert named.name == "XYZ"


class TestDescribePreset:
    def test_breakdown_keys_and_values(self):
        parts = describe_preset(PRESETS["CFL"])
        assert parts == {
            "name": "CFL", "filter": "CFL", "ordering": "CFL", "lc": "ALG4",
            "aux": "tree", "adaptive": "-", "failing_sets": "-",
        }

    def test_filterless_shows_dash(self):
        assert describe_preset(PRESETS["RI"])["filter"] == "-"

    def test_algorithm_components_matches_table(self):
        for name in PRESETS:
            assert algorithm_components(name) == describe_preset(PRESETS[name])

    def test_algorithm_components_recommended_is_symbolic(self):
        parts = algorithm_components("recommended")
        assert parts["ordering"] == "GQL|RI"
        assert parts["failing_sets"] == "auto"

    def test_algorithm_components_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            algorithm_components("made-up")


class TestRegisterAlgorithm:
    @pytest.fixture(autouse=True)
    def _clean_user_presets(self):
        from repro.core import registry

        saved = dict(registry._USER_PRESETS)
        yield
        registry._USER_PRESETS.clear()
        registry._USER_PRESETS.update(saved)

    def test_registered_preset_resolves_and_runs(self):
        register_algorithm(PresetDef(
            name="MYALGO", filter="GQL", ordering="RI", lc="ALG5",
            aux_scope="all",
        ))
        assert "MYALGO" in available_algorithms()
        assert get_registered_algorithm("MYALGO") is not None
        assert "MYALGO" in registered_algorithms()
        spec = get_algorithm("MYALGO")
        assert spec.ordering.name == "RI"

        data = Graph(labels=[0, 1, 0, 1],
                     edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        assert match(query, data, algorithm="MYALGO").num_matches == 4

    def test_builtin_names_win_over_user_presets(self):
        register_algorithm(PresetDef(
            name="GQL", filter="LDF", ordering="RI", lc="ALG2",
        ))
        # The built-in table is consulted first.
        assert get_algorithm("GQL").filter.name == "GQL"

    def test_eager_validation_of_component_names(self):
        with pytest.raises(ConfigurationError, match="unknown filter"):
            register_algorithm(PresetDef(
                name="X", filter="nope", ordering="RI", lc="ALG2"))
        with pytest.raises(ConfigurationError, match="unknown ordering"):
            register_algorithm(PresetDef(
                name="X", filter=None, ordering="nope", lc="ALG2"))
        with pytest.raises(ConfigurationError, match="unknown ComputeLC"):
            register_algorithm(PresetDef(
                name="X", filter=None, ordering="RI", lc="nope"))
        with pytest.raises(ConfigurationError, match="unknown tree source"):
            register_algorithm(PresetDef(
                name="X", filter="CFL", ordering="CFL", lc="ALG4",
                aux_scope="tree", tree_source="nope"))
        assert get_registered_algorithm("X") is None


class TestPresetTable:
    def test_expected_names_present(self):
        expected = {
            "QSI", "GQL", "CFL", "CECI", "DP", "RI", "2PP",
            "QSI-opt", "GQL-opt", "CFL-opt", "CECI-opt", "DP-opt",
            "RI-opt", "2PP-opt", "QSI-opt-ldf", "2PP-opt-ldf",
            "GQLfs", "RIfs", "QSIfs", "CFLfs", "CECIfs", "DPfs", "2PPfs",
        }
        assert expected == set(PRESETS)

    def test_available_algorithms_ends_with_recommended(self):
        names = available_algorithms()
        assert names[-1] == "recommended"
        assert set(PRESETS) <= set(names)

"""Unit tests for the BFS-root selection rules."""

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.filtering.roots import ceci_root, cfl_root, dpiso_root
from repro.graph import Graph


class TestPaperExample:
    def test_all_rules_pick_u0(self):
        # u0 is the unique A-labeled vertex: rarest label, smallest C(u).
        assert cfl_root(PAPER_QUERY, PAPER_DATA) == 0
        assert ceci_root(PAPER_QUERY, PAPER_DATA) == 0
        assert dpiso_root(PAPER_QUERY, PAPER_DATA) == 0


class TestSelectivity:
    def _graphs(self):
        # Data: many 0-labeled vertices, one 1-labeled.
        data = Graph(
            labels=[0, 0, 0, 0, 1],
            edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)],
        )
        # Query: a triangle with one rare-labeled vertex.
        query = Graph(labels=[0, 0, 1], edges=[(0, 1), (1, 2), (0, 2)])
        return query, data

    def test_rare_label_preferred(self):
        query, data = self._graphs()
        assert ceci_root(query, data) == 2
        assert dpiso_root(query, data) == 2

    def test_cfl_prefers_core_vertices(self):
        # Query: triangle (core) with a rare-labeled degree-1 tail.
        query = Graph(
            labels=[0, 0, 0, 1], edges=[(0, 1), (1, 2), (0, 2), (2, 3)]
        )
        data = Graph(
            labels=[0, 0, 0, 0, 1],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (2, 4), (3, 4), (0, 3)],
        )
        root = cfl_root(query, data)
        # The tail vertex 3 has the rarest label but is not in the 2-core.
        assert root in {0, 1, 2}

    def test_cfl_falls_back_without_core(self):
        # A path has an empty 2-core; the rule must still pick something.
        query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        data = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        assert cfl_root(query, data) in {0, 1, 2}

    def test_deterministic(self):
        query, data = self._graphs()
        assert cfl_root(query, data) == cfl_root(query, data)
        assert ceci_root(query, data) == ceci_root(query, data)
        assert dpiso_root(query, data) == dpiso_root(query, data)

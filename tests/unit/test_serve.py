"""Unit tests for the serving tier: clock, service, wire protocol.

The concurrency semantics (coalescing parity, deadlines under load,
backpressure races) live in ``tests/concurrency/``; these tests pin the
single-threaded contracts — admission outcomes, counter accounting,
response shapes, wire encoding — that the concurrent suite builds on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    DeadlineExceededError,
    GraphFormatError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.graph import Graph, erdos_renyi_graph, extract_query
from repro.serve import (
    FakeClock,
    MatchService,
    ServeResponse,
    SystemClock,
)
from repro.serve import protocol


@pytest.fixture(scope="module")
def data():
    return erdos_renyi_graph(80, 5.0, 4, seed=77)


@pytest.fixture(scope="module")
def query(data):
    return extract_query(data, 5, seed=1)


@pytest.fixture
def service(data):
    service = MatchService(workers=2)
    service.add_graph("g", data)
    yield service
    service.close()


class TestClock:
    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        a, b = clock.now(), clock.now()
        assert b >= a

    def test_fake_clock_advances_exactly(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(0.5)
        assert clock.now() == 10.5

    def test_fake_clock_rejects_going_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


class TestServiceBasics:
    def test_match_roundtrip(self, service, query, data):
        response = service.match(query, graph="g", tenant="alice")
        assert isinstance(response, ServeResponse)
        assert response.ok and response.status == "ok"
        assert response.tenant == "alice"
        assert response.graph == "g"
        assert not response.coalesced
        assert response.result.num_matches > 0
        assert response.total_seconds >= response.queue_seconds >= 0.0

    def test_graph_registry(self, service, data):
        assert service.graphs() == ["g"]
        service.add_graph("other", data)
        assert service.graphs() == ["g", "other"]
        service.remove_graph("other")
        assert service.graphs() == ["g"]

    def test_sessions_are_per_tenant_and_graph(self, service, query):
        service.match(query, graph="g", tenant="a")
        service.match(query, graph="g", tenant="b")
        s_a = service.session_for("a", "g")
        s_b = service.session_for("b", "g")
        assert s_a is not s_b
        assert s_a is service.session_for("a", "g")  # cached

    def test_session_for_unknown_graph_raises(self, service):
        with pytest.raises(UnknownGraphError):
            service.session_for("a", "missing")

    def test_results_match_direct_session(self, service, query, data):
        from repro.core.session import MatchSession

        direct = MatchSession(data).match(query)
        served = service.match(query, graph="g").result
        assert served.embeddings == direct.embeddings
        assert served.num_matches == direct.num_matches

    def test_per_request_engine_override_recorded(self, service, query):
        from repro.enumeration.engines import enable_recursive_baseline

        enable_recursive_baseline()
        response = service.match(query, graph="g", engine="recursive")
        assert response.result.engine == "recursive"
        response = service.match(query, graph="g", engine="iterative")
        assert response.result.engine == "iterative"

    def test_counters_accounting(self, data, query):
        service = MatchService(workers=1)
        service.add_graph("g", data)
        try:
            for _ in range(3):
                service.match(query, graph="g")
            with pytest.raises(UnknownGraphError):
                service.submit(query, graph="missing")
        finally:
            service.close()
        counters = service.metrics.counters
        assert counters["serve.requests"] == 4
        assert counters["serve.admitted"] == 3
        assert counters["serve.completed"] == 3
        assert counters["serve.rejected_unknown_graph"] == 1

    def test_stats_snapshot_shape(self, service, query):
        service.match(query, graph="g")
        stats = service.stats()
        assert stats["graphs"] == ["g"]
        assert stats["pending"] == 0
        assert stats["inflight"] == 0
        assert stats["queue_depth_peak"] >= 1
        assert stats["counters"]["serve.completed"] >= 1
        assert "serve.execute" in stats["phase_seconds"]

    def test_close_then_submit_raises(self, data, query):
        service = MatchService(workers=1)
        service.add_graph("g", data)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(query, graph="g")

    def test_context_manager_closes(self, data, query):
        with MatchService(workers=1) as service:
            service.add_graph("g", data)
            assert service.match(query, graph="g").ok
        with pytest.raises(ServiceClosedError):
            service.submit(query, graph="g")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MatchService(workers=0)
        with pytest.raises(ValueError):
            MatchService(max_queue_depth=0)
        with pytest.raises(ValueError):
            MatchService().add_graph("", None)

    def test_serve_errors_share_base(self):
        for exc_type in (
            UnknownGraphError,
            QueueFullError,
            DeadlineExceededError,
            ServiceClosedError,
        ):
            assert issubclass(exc_type, ServeError)

    def test_execution_error_propagates_to_future(self, data, query):
        service = MatchService(workers=1)
        service.add_graph("g", data)
        try:
            future = service.submit(query, graph="g", algorithm="no-such")
            with pytest.raises(Exception):
                future.result(timeout=60)
            assert service.metrics.counters["serve.errors"] == 1
        finally:
            service.close()

    def test_cancel_inflight_shutdown_yields_partial_result(self, data):
        # A query with a huge result space, preempted by shutdown: the
        # engine stops at a leaf-batch boundary and reports unsolved.
        big = erdos_renyi_graph(300, 8.0, 1, seed=5)  # single label
        triangle_ish = extract_query(big, 4, seed=3)
        service = MatchService(workers=1)
        service.add_graph("g", big)
        service._cancel_event.set()  # preempt before the run starts
        future = service.submit(
            triangle_ish, graph="g", match_limit=None, store_limit=0
        )
        response = future.result(timeout=60)
        service.close()
        assert response.status == "ok"
        assert not response.result.solved


class TestProtocol:
    def test_graph_payload_roundtrip(self, query):
        payload = protocol.graph_to_payload(query)
        rebuilt = protocol.graph_from_payload(payload)
        assert rebuilt == query

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            [],
            {"labels": "abc", "edges": []},
            {"labels": [0, 1], "edges": "nope"},
            {"labels": [0, 1, 0], "edges": [[0]]},
            {"labels": [0, 1, 0], "edges": [[0, "x"]]},
        ],
    )
    def test_bad_graph_payloads_raise(self, bad):
        with pytest.raises(GraphFormatError):
            protocol.graph_from_payload(bad)

    def test_parse_request_validates_op(self):
        assert protocol.parse_request('{"op": "ping"}')["op"] == "ping"
        with pytest.raises(GraphFormatError):
            protocol.parse_request("not json")
        with pytest.raises(GraphFormatError):
            protocol.parse_request('["op"]')
        with pytest.raises(GraphFormatError):
            protocol.parse_request('{"op": "explode"}')

    def test_encode_response_is_one_json_line(self):
        raw = protocol.encode_response({"ok": True, "id": 7})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert json.loads(raw) == {"ok": True, "id": 7}

    def test_error_response_carries_class_name(self):
        payload = protocol.error_response(QueueFullError("full"), 3)
        assert payload == {
            "ok": False,
            "error": "full",
            "code": "QueueFullError",
            "id": 3,
        }

    def test_match_response_fields(self, service, query):
        response = service.match(query, graph="g", tenant="t")
        payload = protocol.match_response(
            response, request_id=9, include_embeddings=True
        )
        assert payload["ok"] and payload["status"] == "ok"
        assert payload["id"] == 9
        assert payload["num_matches"] == response.result.num_matches
        assert payload["engine"] == response.result.engine
        assert len(payload["embeddings"]) == len(response.result.embeddings)
        json.dumps(payload)  # wire-safe

    def test_match_response_without_embeddings(self, service, query):
        response = service.match(query, graph="g")
        payload = protocol.match_response(response)
        assert "embeddings" not in payload
        assert "id" not in payload

"""Unit tests for MatchSession, MatchPlan and the LRU plan/prep caches."""

import pytest

from repro import MatchSession, compile_plan, count_matches, has_match, match
from repro.core.plan import LRUCache, run_plan
from repro.enumeration.engines import enable_recursive_baseline
from repro.errors import InvalidQueryError
from repro.graph import Graph
from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

RING = Graph(
    labels=[0, 1, 0, 1, 0, 1],
    edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2), (3, 5)],
)
PATH = Graph(labels=[1, 0, 1, 0], edges=[(0, 1), (1, 2), (2, 3)])
WEDGE = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.info() == {
            "hits": 1, "misses": 1, "size": 1, "capacity": 2,
        }

    def test_eviction_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a becomes most-recent
        cache.put("c", 3)       # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_capacity_zero_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1

    def test_capacity_none_is_unbounded(self):
        cache = LRUCache(capacity=None)
        for i in range(500):
            cache.put(i, i)
        assert len(cache) == 500

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1


class TestCompile:
    def test_plan_is_cached_by_fingerprint(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        plan1, hit1 = session.compile(PAPER_QUERY)
        plan2, hit2 = session.compile(PAPER_QUERY)
        assert (hit1, hit2) == (False, True)
        assert plan1 is plan2
        assert plan1.algorithm.name == "GQL"
        assert plan1.query_vertices == PAPER_QUERY.num_vertices

    def test_renumbered_query_hits_same_plan(self):
        session = MatchSession(RING, algorithm="GQL")
        session.compile(PATH)
        renumbered = Graph(labels=[0, 1, 0, 1],
                           edges=[(3, 2), (2, 1), (1, 0)])
        _, hit = session.compile(renumbered)
        assert hit

    def test_distinct_algorithms_get_distinct_plans(self):
        session = MatchSession(RING)
        plan_gql, _ = session.compile(PATH, algorithm="GQL")
        plan_ri, hit = session.compile(PATH, algorithm="RI")
        assert not hit
        assert plan_gql.algorithm.name != plan_ri.algorithm.name

    def test_compile_plan_standalone(self):
        plan = compile_plan("GQLfs", PAPER_QUERY, PAPER_DATA)
        assert plan.algorithm.failing_sets
        assert plan.fingerprint.startswith("q4e")
        result, prepared = run_plan(plan, PAPER_QUERY, PAPER_DATA)
        assert result.num_matches == len(PAPER_MATCHES)
        # Reusing the prepared artifacts reproduces the result with zero
        # preprocessing charged.
        again, _ = run_plan(plan, PAPER_QUERY, PAPER_DATA, prepared=prepared)
        assert again.num_matches == result.num_matches
        assert again.preprocessing_ms == 0.0


class TestSessionMatch:
    def test_agrees_with_one_shot(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        result = session.match(PAPER_QUERY)
        one_shot = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert result.num_matches == one_shot.num_matches
        assert result.mappings == one_shot.mappings
        assert {tuple(m[u] for u in sorted(m)) for m in result.mappings} \
            == PAPER_MATCHES

    def test_repeat_hits_both_caches(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        first = session.match(PAPER_QUERY)
        second = session.match(PAPER_QUERY)
        assert first.metrics.counters["plan.cache_miss"] == 1
        assert first.metrics.counters["plan.prep_miss"] == 1
        assert second.metrics.counters["plan.cache_hit"] == 1
        assert second.metrics.counters["plan.prep_hit"] == 1
        assert second.num_matches == first.num_matches
        assert second.mappings == first.mappings
        # The prep-reuse run charges no preprocessing time.
        assert second.preprocessing_ms == 0.0

    def test_session_metrics_aggregate(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        for _ in range(3):
            session.match(PAPER_QUERY)
        counters = session.metrics.counters
        assert counters["session.queries"] == 3
        assert counters["session.plan_cache_hits"] == 2
        assert counters["session.plan_cache_misses"] == 1
        assert counters["session.prep_cache_hits"] == 2
        assert counters["session.prep_cache_misses"] == 1
        info = session.cache_info()
        assert info["plan"]["hits"] == 2 and info["plan"]["size"] == 1
        assert info["prep"]["hits"] == 2 and info["prep"]["size"] == 1

    def test_renumbered_query_hits_plan_but_not_prep(self):
        session = MatchSession(RING, algorithm="GQL")
        session.match(PATH)
        renumbered = Graph(labels=[0, 1, 0, 1],
                           edges=[(3, 2), (2, 1), (1, 0)])
        result = session.match(renumbered)
        assert result.metrics.counters["plan.cache_hit"] == 1
        assert result.metrics.counters["plan.prep_miss"] == 1

    def test_record_cache_metrics_off_hides_counters(self):
        session = MatchSession(
            PAPER_DATA, algorithm="GQL", record_cache_metrics=False
        )
        result = session.match(PAPER_QUERY)
        assert not any(k.startswith("plan.") for k in result.metrics.counters)
        assert not session.metrics.counters.get("plan.cache_hit")

    def test_one_shot_match_has_no_cache_counters(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="GQL")
        assert not any(k.startswith("plan.") for k in result.metrics.counters)

    def test_prep_cache_disabled_still_correct(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL", prep_cache_size=0)
        first = session.match(PAPER_QUERY)
        second = session.match(PAPER_QUERY)
        assert second.num_matches == first.num_matches
        assert "plan.prep_hit" not in second.metrics.counters
        assert second.preprocessing_ms > 0.0

    def test_prep_lru_eviction_under_capacity_one(self):
        session = MatchSession(RING, algorithm="GQL", prep_cache_size=1)
        session.match(PATH)
        session.match(WEDGE)       # evicts PATH's artifacts
        result = session.match(PATH)
        assert result.metrics.counters["plan.prep_miss"] == 1

    def test_clear_caches(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        session.match(PAPER_QUERY)
        session.clear_caches()
        result = session.match(PAPER_QUERY)
        assert result.metrics.counters["plan.cache_miss"] == 1
        assert session.metrics.counters["session.queries"] == 2

    def test_per_call_algorithm_override(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        ri = session.match(PAPER_QUERY, algorithm="RIfs")
        assert ri.algorithm == "RIfs"
        assert ri.num_matches == len(PAPER_MATCHES)

    def test_validation_on_by_default(self):
        session = MatchSession(PAPER_DATA)
        with pytest.raises(InvalidQueryError):
            session.match(Graph(labels=[0, 0], edges=[(0, 1)]))

    def test_match_many_in_order(self):
        session = MatchSession(RING, algorithm="GQLfs")
        workload = [PATH, WEDGE, PATH, WEDGE, PATH]
        results = session.match_many(workload)
        singles = [match(q, RING, algorithm="GQLfs") for q in workload]
        assert [r.num_matches for r in results] \
            == [s.num_matches for s in singles]
        assert session.metrics.counters["session.queries"] == 5
        assert session.metrics.counters["session.plan_cache_misses"] == 2

    def test_count_and_has_match(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        assert session.count_matches(PAPER_QUERY) == len(PAPER_MATCHES)
        assert session.has_match(PAPER_QUERY)
        impossible = Graph(labels=[7, 7, 7], edges=[(0, 1), (1, 2)])
        assert not session.has_match(impossible)

    def test_repr(self):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        session.match(PAPER_QUERY)
        text = repr(session)
        assert "MatchSession" in text and "'GQL'" in text and "queries=1" in text


class TestApiPassthrough:
    def test_count_matches_validate_passthrough(self):
        small = Graph(labels=[0, 0], edges=[(0, 1)])
        with pytest.raises(InvalidQueryError):
            count_matches(small, PAPER_DATA, algorithm="GQL")

    def test_has_match_validate_passthrough(self):
        small = Graph(labels=[0, 0], edges=[(0, 1)])
        with pytest.raises(InvalidQueryError):
            has_match(small, PAPER_DATA, algorithm="GQL")

    def test_count_matches_store_limit_passthrough(self):
        # store_limit only caps retained embeddings; the count is exact
        # either way.
        assert count_matches(
            PAPER_QUERY, PAPER_DATA, algorithm="GQL", store_limit=1
        ) == len(PAPER_MATCHES)

    def test_has_match_accepts_validate_false(self):
        assert has_match(
            PAPER_QUERY, PAPER_DATA, algorithm="GQL", validate=False
        )


class TestEngineOverrideRecording:
    """Per-call engine overrides must be resolved AND recorded identically
    whether the caller uses match(), count_matches() or has_match().

    count_matches/has_match delegate to match(), so the override flows
    through one code path; this pins that the MatchResult the internal
    run produces carries the resolved engine name for every entry point
    (the serving tier reports it to clients verbatim).
    """

    @pytest.fixture
    def captured_engines(self, monkeypatch):
        import repro.core.session as session_module

        captured = []
        inner = session_module.run_plan

        def spy(*args, **kwargs):
            result, prepared = inner(*args, **kwargs)
            captured.append(result.engine)
            return result, prepared

        monkeypatch.setattr(session_module, "run_plan", spy)
        return captured

    @pytest.mark.parametrize("engine", ["recursive", "iterative"])
    def test_session_count_and_has_match_record_override(
        self, captured_engines, engine
    ):
        enable_recursive_baseline()
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        n = session.count_matches(PAPER_QUERY, engine=engine)
        found = session.has_match(PAPER_QUERY, engine=engine)
        direct = session.match(PAPER_QUERY, engine=engine)
        assert n == len(PAPER_MATCHES) and found
        assert direct.engine == engine
        assert captured_engines == [engine] * 3

    @pytest.mark.parametrize("engine", ["recursive", "iterative"])
    def test_api_count_and_has_match_record_override(
        self, captured_engines, engine
    ):
        enable_recursive_baseline()
        n = count_matches(PAPER_QUERY, PAPER_DATA, algorithm="GQL", engine=engine)
        found = has_match(PAPER_QUERY, PAPER_DATA, algorithm="GQL", engine=engine)
        assert n == len(PAPER_MATCHES) and found
        assert captured_engines == [engine] * 2

    def test_default_engine_still_recorded(self, captured_engines):
        session = MatchSession(PAPER_DATA, algorithm="GQL")
        session.count_matches(PAPER_QUERY)
        assert captured_engines == ["iterative"]

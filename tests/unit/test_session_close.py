"""Regression tests for MatchSession.close(): idempotent, race-safe.

The close contract: callable any number of times from any thread, and a
close racing an in-flight parallel dispatch defers the shared-memory
unlink until the last dispatch drains (workers must never lose the
segment mid-attach).
"""

import os
import threading

import pytest

from repro.core.session import MatchSession
from repro.graph.generators import erdos_renyi_graph
from repro.graph.store import SharedMemoryStore


def _shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def data():
    return erdos_renyi_graph(60, 6.0, 3, seed=11)


class TestIdempotentClose:
    def test_close_without_parallel_is_noop(self, data):
        session = MatchSession(data)
        session.close()
        session.close()

    def test_double_close_after_publish(self, data):
        session = MatchSession(data)
        handle = session._shared_handle()
        assert _shm_exists(handle.name)
        session.close()
        assert not _shm_exists(handle.name)
        session.close()  # second close must not raise

    def test_concurrent_close_from_many_threads(self, data):
        session = MatchSession(data)
        handle = session._shared_handle()
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    session.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert not _shm_exists(handle.name)

    def test_session_usable_after_close(self, data, paper_query):
        # close() releases the segment, not the session: a later match
        # (sequential or parallel) republishes on demand.
        session = MatchSession(data)
        first = session._shared_handle()
        session.close()
        second = session._shared_handle()
        assert _shm_exists(second.name)
        assert second.name != first.name
        session.close()


class TestDeferredClose:
    def test_close_defers_while_dispatch_in_flight(self, data):
        session = MatchSession(data)
        handle = session._shared_handle()
        with session._parallel_guard():
            session.close()
            # Deferred: the segment must survive the in-flight dispatch.
            assert session._close_deferred
            assert _shm_exists(handle.name)
        # Last guard exit performs the deferred release.
        assert not session._close_deferred
        assert not _shm_exists(handle.name)

    def test_nested_guards_release_on_last_exit(self, data):
        session = MatchSession(data)
        handle = session._shared_handle()
        with session._parallel_guard():
            with session._parallel_guard():
                session.close()
            assert _shm_exists(handle.name)  # one guard still active
        assert not _shm_exists(handle.name)

    def test_close_race_against_guard_threads(self, data):
        session = MatchSession(data)
        handle = session._shared_handle()
        barrier = threading.Barrier(5)
        errors = []

        def dispatch():
            try:
                barrier.wait()
                for _ in range(50):
                    with session._parallel_guard():
                        pass
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def closer():
            try:
                barrier.wait()
                for _ in range(50):
                    session.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=dispatch) for _ in range(3)]
        threads += [threading.Thread(target=closer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        session.close()
        assert not _shm_exists(handle.name)


class TestPreSharedData:
    def test_session_reuses_existing_segment(self, data):
        owner = SharedMemoryStore.publish(data)
        try:
            session = MatchSession(owner.graph())
            handle = session._shared_handle()
            assert handle.name == owner.name
            # The owner, not the session, is responsible for the
            # segment: close() must leave it alone.
            session.close()
            assert _shm_exists(owner.name)
        finally:
            owner.close()
        assert not _shm_exists(owner.name)

"""Unit tests for the zero-copy shared-memory graph (repro.parallel)."""

import pickle

import numpy as np
import pytest

from repro.core.api import match
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.graph.query_gen import extract_query
from repro.parallel import SharedGraph, SharedGraphHandle, attach


@pytest.fixture(scope="module")
def data():
    return rmat_graph(300, 8.0, 3, seed=11, clustering=0.1)


class TestSharedGraph:
    def test_attach_round_trips_csr(self, data):
        shared = SharedGraph(data)
        try:
            shm, attached = attach(shared.handle)
            try:
                assert attached.num_vertices == data.num_vertices
                assert attached.num_edges == data.num_edges
                np.testing.assert_array_equal(attached.labels, data.labels)
                np.testing.assert_array_equal(attached.csr[0], data.csr[0])
                np.testing.assert_array_equal(attached.csr[1], data.csr[1])
            finally:
                del attached
                shm.close()
        finally:
            shared.unlink()

    def test_attached_graph_answers_queries(self, data):
        query = extract_query(data, 5, seed=2)
        expected = match(query, data, algorithm="GQL")
        shared = SharedGraph(data)
        try:
            shm, attached = attach(shared.handle)
            result = match(query, attached, algorithm="GQL")
            assert result.num_matches == expected.num_matches
            assert result.embeddings == expected.embeddings
            del attached
            shm.close()
        finally:
            shared.unlink()

    def test_label_index_matches(self, data):
        shared = SharedGraph(data)
        try:
            shm, attached = attach(shared.handle)
            for label in range(int(data.labels.max()) + 1):
                np.testing.assert_array_equal(
                    attached.vertices_with_label(label),
                    data.vertices_with_label(label),
                )
            del attached
            shm.close()
        finally:
            shared.unlink()

    def test_unlink_is_idempotent(self, data):
        shared = SharedGraph(data)
        shared.unlink()
        shared.unlink()

    def test_context_manager_unlinks(self, data):
        with SharedGraph(data) as shared:
            handle = shared.handle
        # The segment is gone: a fresh attach must fail.
        with pytest.raises(FileNotFoundError):
            attach(handle)

    def test_handle_pickles(self, data):
        shared = SharedGraph(data)
        try:
            handle = pickle.loads(pickle.dumps(shared.handle))
            assert handle == shared.handle
            assert isinstance(handle, SharedGraphHandle)
            shm, attached = attach(handle)
            assert attached.num_edges == data.num_edges
            del attached
            shm.close()
        finally:
            shared.unlink()

    def test_empty_graph(self):
        empty = Graph([0], [])
        shared = SharedGraph(empty)
        try:
            shm, attached = attach(shared.handle)
            assert attached.num_vertices == 1
            assert attached.num_edges == 0
            del attached
            shm.close()
        finally:
            shared.unlink()

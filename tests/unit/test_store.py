"""Unit tests for the graph storage layer (repro.graph.store)."""

import os
import zlib

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidGraphError
from repro.graph import Graph
from repro.graph.store import (
    RGF_HEADER_SIZE,
    RGF_MAGIC,
    CSRLayout,
    InMemoryStore,
    MmapStore,
    SharedMemoryStore,
    as_graph,
    graph_arrays,
    read_rgf_header,
    write_rgf,
)


@pytest.fixture
def graph():
    return Graph(
        labels=[0, 1, 0, 2, 1],
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
    )


class TestCSRLayout:
    def test_for_graph_counts(self, graph):
        layout = CSRLayout.for_graph(graph)
        assert layout.num_vertices == 5
        assert layout.num_edges == 6
        assert layout.directed_edges == 12
        # labels(n) + offsets(n+1) + neighbors(2E) + by_label(n)
        assert layout.total_items == 3 * 5 + 1 + 12
        assert layout.total_bytes == layout.total_items * 8

    def test_split_partitions_everything(self, graph):
        layout = CSRLayout.for_graph(graph)
        base = np.arange(layout.total_items, dtype=np.int64)
        labels, offsets, neighbors, by_label = layout.split(base)
        total = sum(a.size for a in (labels, offsets, neighbors, by_label))
        assert total == layout.total_items
        # Views, not copies.
        assert labels.base is base

    def test_segment_spans_cover_in_order(self, graph):
        layout = CSRLayout.for_graph(graph)
        spans = layout.segment_spans()
        assert [name for name, _, _ in spans] == [
            "labels", "offsets", "neighbors", "by_label",
        ]
        cursor = 0
        for _, start, count in spans:
            assert start == cursor
            cursor += count
        assert cursor == layout.total_items

    def test_empty_graph(self):
        layout = CSRLayout.for_graph(Graph(labels=[], edges=[]))
        assert layout.total_items == 1  # the lone offsets[0] = 0


class TestInMemoryStore:
    def test_from_graph_is_zero_copy(self, graph):
        store = InMemoryStore.from_graph(graph)
        assert store.labels is graph.labels
        assert store.graph() is graph
        assert store.backend == "memory"

    def test_graph_store_property_caches(self, graph):
        assert graph.store is graph.store
        assert graph.store.graph() is graph

    def test_materialize_copies(self, graph):
        copy = InMemoryStore.materialize(graph.store)
        assert copy.labels is not graph.labels
        assert copy.graph() == graph

    def test_fingerprint_stable_across_backends(self, graph, tmp_path):
        fp = graph.store.fingerprint()
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        with MmapStore(path) as store:
            assert store.fingerprint() == fp
        assert InMemoryStore.materialize(graph.store).fingerprint() == fp


class TestRgfFormat:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        with MmapStore(path, validate=True) as store:
            assert store.graph() == graph
            assert store.backend == "mmap"

    def test_header_is_constant_size(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        layout, _ = read_rgf_header(path)
        assert path.stat().st_size == RGF_HEADER_SIZE + layout.total_bytes

    def test_empty_graph_round_trip(self, tmp_path):
        empty = Graph(labels=[], edges=[])
        path = tmp_path / "empty.rgf"
        write_rgf(empty, path)
        with MmapStore(path, validate=True) as store:
            assert store.graph() == empty

    def test_write_is_atomic(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        assert not (tmp_path / "g.rgf.tmp").exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="rgf"):
            MmapStore(tmp_path / "nope.rgf")

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rgf"
        path.write_bytes(b"RGF1abc")
        with pytest.raises(GraphFormatError, match="truncated"):
            read_rgf_header(path)

    def test_bad_magic(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(raw)
        with pytest.raises(GraphFormatError, match="magic"):
            MmapStore(path)

    def test_unsupported_version(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = bytearray(path.read_bytes())
        raw[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(raw)
        with pytest.raises(GraphFormatError, match="version"):
            MmapStore(path)

    def test_header_checksum_detects_flips(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = bytearray(path.read_bytes())
        raw[8] ^= 0xFF  # num_vertices field
        path.write_bytes(raw)
        with pytest.raises(GraphFormatError, match="header checksum"):
            MmapStore(path)

    def test_truncated_data(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(GraphFormatError, match="truncated"):
            MmapStore(path)

    def test_segment_checksum_mismatch_names_offset(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = bytearray(path.read_bytes())
        raw[RGF_HEADER_SIZE] ^= 0x01  # first byte of the labels segment
        path.write_bytes(raw)
        with pytest.raises(GraphFormatError) as err:
            MmapStore(path, validate=True)
        assert "labels" in str(err.value)
        assert str(RGF_HEADER_SIZE) in str(err.value)

    def test_validation_off_skips_checksums(self, graph, tmp_path):
        # validate=False is the O(header) open: segment CRCs not read.
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        raw = bytearray(path.read_bytes())
        raw[RGF_HEADER_SIZE] ^= 0x01
        path.write_bytes(raw)
        store = MmapStore(path)  # opens fine
        store.close()

    def test_csr_invariant_violation_caught(self, graph, tmp_path):
        # Corrupt offsets into a non-monotonic sequence and fix up its
        # CRC so only the structural validation can catch it.
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        layout, _ = read_rgf_header(path)
        raw = bytearray(path.read_bytes())
        n = layout.num_vertices
        start = RGF_HEADER_SIZE + n * 8  # offsets segment
        seg = np.frombuffer(
            bytes(raw[start:start + (n + 1) * 8]), dtype="<i8"
        ).copy()
        seg[1] = seg[-1] + 10
        raw[start:start + (n + 1) * 8] = seg.tobytes()
        crc = zlib.crc32(seg.tobytes())
        raw[36:40] = crc.to_bytes(4, "little")  # offsets crc slot
        raw[48:52] = zlib.crc32(bytes(raw[:48])).to_bytes(4, "little")
        path.write_bytes(raw)
        with pytest.raises(GraphFormatError, match="offsets"):
            MmapStore(path, validate=True)

    def test_error_carries_path_context(self, tmp_path):
        path = tmp_path / "bad.rgf"
        path.write_bytes(b"junk")
        with pytest.raises(GraphFormatError, match="bad.rgf"):
            read_rgf_header(path)


class TestSharedMemoryStore:
    def test_publish_attach_round_trip(self, graph):
        owner = SharedMemoryStore.publish(graph)
        try:
            assert owner.backend == "shared"
            attached = SharedMemoryStore.attach(owner.handle)
            try:
                assert attached.graph() == graph
                assert attached.fingerprint() == graph.store.fingerprint()
            finally:
                attached.close()
        finally:
            owner.close()

    def test_owner_close_unlinks(self, graph):
        owner = SharedMemoryStore.publish(graph)
        name = owner.name
        owner.close()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_handle_carries_layout(self, graph):
        owner = SharedMemoryStore.publish(graph)
        try:
            handle = owner.handle
            assert handle.num_vertices == graph.num_vertices
            assert handle.num_edges == graph.num_edges
            assert handle.layout == CSRLayout.for_graph(graph)
        finally:
            owner.close()


class TestAsGraph:
    def test_graph_passthrough(self, graph):
        assert as_graph(graph) is graph

    def test_store_dispatch(self, graph):
        assert as_graph(graph.store) is graph

    def test_rgf_path_dispatch(self, graph, tmp_path):
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        loaded = as_graph(path)
        assert loaded == graph
        assert loaded._store is not None
        assert loaded._store.backend == "mmap"

    def test_text_path_dispatch(self, graph, tmp_path):
        from repro.graph import save_graph

        path = tmp_path / "g.graph"
        save_graph(graph, path)
        assert as_graph(str(path)) == graph

    def test_rejects_junk(self):
        with pytest.raises(InvalidGraphError):
            as_graph(42)


class TestGraphArrays:
    def test_by_label_is_stable_label_sort(self, graph):
        _, _, _, by_label = graph_arrays(graph)
        labels = graph.labels[by_label]
        assert list(labels) == sorted(labels)
        # Stable: ids ascending inside each label group.
        for lbl in set(graph.labels.tolist()):
            group = by_label[labels == lbl]
            assert list(group) == sorted(group)


class TestStoreBackedMatching:
    def test_match_identical_across_backends(self, graph, tmp_path):
        from repro.core.api import match

        query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        baseline = match(query, graph, algorithm="GQL")
        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        with MmapStore(path, validate=True) as mmap_store:
            from_mmap = match(query, mmap_store.graph(), algorithm="GQL")
        shm = SharedMemoryStore.publish(graph)
        try:
            from_shm = match(query, shm.graph(), algorithm="GQL")
        finally:
            shm.close()
        assert from_mmap.embeddings == baseline.embeddings
        assert from_shm.embeddings == baseline.embeddings

    def test_store_backed_graph_pickles_as_plain_arrays(self, graph, tmp_path):
        import pickle

        path = tmp_path / "g.rgf"
        write_rgf(graph, path)
        with MmapStore(path) as store:
            clone = pickle.loads(pickle.dumps(store.graph()))
        assert clone == graph
        assert clone._store is None
        assert clone.labels.base is None or clone.labels.flags.owndata

"""Unit tests for the lazy match iterator."""

from itertools import islice

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro import iter_matches
from repro.baselines import brute_force_matches
from repro.errors import InvalidQueryError
from repro.graph import Graph, erdos_renyi_graph, extract_query


class TestIterMatches:
    def test_paper_example(self):
        got = {
            tuple(m[u] for u in range(4))
            for m in iter_matches(PAPER_QUERY, PAPER_DATA)
        }
        assert got == set(PAPER_MATCHES)

    def test_lazy_first_match(self):
        data = erdos_renyi_graph(300, 8.0, 1, seed=1)
        query = extract_query(data, 5, seed=2)
        first = next(iter_matches(query, data))
        assert len(first) == 5
        for a, b in query.edges():
            assert data.has_edge(first[a], first[b])

    def test_islice_composition(self):
        data = erdos_renyi_graph(200, 6.0, 1, seed=3)
        query = extract_query(data, 4, seed=4)
        three = list(islice(iter_matches(query, data), 3))
        assert len(three) == 3
        assert len({tuple(sorted(m.items())) for m in three}) == 3

    def test_empty_candidates_yields_nothing(self):
        query = Graph(labels=[9, 9, 9], edges=[(0, 1), (1, 2)])
        assert list(iter_matches(query, PAPER_DATA)) == []

    def test_agrees_with_oracle(self):
        data = erdos_renyi_graph(15, 4.0, 2, seed=5)
        query = extract_query(data, 4, seed=6, max_attempts=200)
        got = {
            tuple(m[u] for u in range(query.num_vertices))
            for m in iter_matches(query, data)
        }
        assert got == set(brute_force_matches(query, data))

    def test_validates_query(self):
        with pytest.raises(InvalidQueryError):
            next(iter_matches(Graph(labels=[0, 1], edges=[(0, 1)]), PAPER_DATA))
        with pytest.raises(InvalidQueryError):
            next(
                iter_matches(
                    Graph(labels=[0, 1, 2], edges=[(0, 1)]), PAPER_DATA
                )
            )

    def test_no_duplicates_on_dense_host(self):
        k5 = Graph(
            labels=[0] * 5,
            edges=[(a, b) for a in range(5) for b in range(a + 1, 5)],
        )
        triangle = Graph(labels=[0] * 3, edges=[(0, 1), (1, 2), (0, 2)])
        all_matches = [
            tuple(m[u] for u in range(3)) for m in iter_matches(triangle, k5)
        ]
        assert len(all_matches) == len(set(all_matches)) == 60

"""Unit tests for the study harness (datasets, workloads, runner, reporting)."""

import pytest

from repro.study import (
    DATASETS,
    QuerySet,
    build_query_set,
    build_workload,
    default_query_sizes,
    format_series,
    format_table,
    friendster_standin,
    load_dataset,
    run_algorithm_on_set,
)
from repro.study.reporting import format_float
from repro.study.runner import default_match_limit, default_time_limit


class TestDatasets:
    def test_registry_has_all_eight(self):
        assert set(DATASETS) == {"ye", "hu", "hp", "wn", "up", "yt", "db", "eu"}

    def test_paper_reference_values(self):
        spec = DATASETS["ye"]
        assert spec.paper_vertices == 3112
        assert spec.paper_edges == 12519

    def test_shape_matches_spec(self):
        g = load_dataset("ye", scale=0.25)
        spec = DATASETS["ye"]
        assert g.num_vertices == round(spec.num_vertices * 0.25)
        assert abs(g.average_degree - spec.avg_degree) < 2.0

    def test_caching(self):
        assert load_dataset("ye", scale=0.25) is load_dataset("ye", scale=0.25)

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("bogus")

    def test_scale_factor(self):
        assert DATASETS["up"].scale_factor > 100

    def test_friendster_edge_sampling(self):
        full = friendster_standin(1.0, scale=0.05)
        sampled = friendster_standin(0.4, scale=0.05)
        assert sampled.num_vertices == full.num_vertices
        assert sampled.num_edges < 0.6 * full.num_edges

    def test_friendster_invalid_fraction(self):
        with pytest.raises(ValueError):
            friendster_standin(0.0)

    def test_wordnet_label_skew(self):
        import numpy as np

        g = load_dataset("wn", scale=0.3)
        counts = np.bincount(np.asarray(g.labels))
        assert counts.max() / g.num_vertices > 0.8


class TestWorkloads:
    @pytest.fixture(scope="class")
    def small_host(self):
        return load_dataset("ye", scale=0.3)

    def test_default_sizes(self):
        assert default_query_sizes("hu") == [4, 6, 8, 10]
        assert default_query_sizes("yt") == [4, 8, 12, 16]

    def test_build_query_set(self, small_host):
        qs = build_query_set(small_host, "ye", 6, "dense", 4, seed=1)
        assert isinstance(qs, QuerySet)
        assert len(qs) == 4
        assert all(q.num_vertices == 6 for q in qs.queries)

    def test_label_format(self, small_host):
        assert build_query_set(small_host, "ye", 6, "dense", 2, seed=1).label == "Q6D"
        assert build_query_set(small_host, "ye", 6, "sparse", 2, seed=1).label == "Q6S"
        assert build_query_set(small_host, "ye", 4, None, 2, seed=1).label == "Q4"

    def test_workload_structure(self, small_host):
        sets = build_workload(small_host, "ye", sizes=[8], count=2, seed=5)
        labels = [qs.label for qs in sets]
        assert labels[0] == "Q4"
        assert "Q8D" in labels and "Q8S" in labels

    def test_workload_without_q4(self, small_host):
        sets = build_workload(
            small_host, "ye", sizes=[6], count=2, seed=5, include_q4=False
        )
        assert all(qs.size != 4 for qs in sets)

    def test_deterministic(self, small_host):
        a = build_query_set(small_host, "ye", 6, "dense", 3, seed=9)
        b = build_query_set(small_host, "ye", 6, "dense", 3, seed=9)
        assert a.queries == b.queries


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        data = load_dataset("ye", scale=0.3)
        qs = build_query_set(data, "ye", 5, None, 4, seed=3)
        return data, qs

    def test_summary_fields(self, setup):
        data, qs = setup
        s = run_algorithm_on_set(
            "GQL-opt", data, qs.queries, "ye", qs.label, time_limit=2.0
        )
        assert s.num_queries == 4
        assert s.algorithm == "GQL-opt"
        assert s.avg_preprocessing_ms >= 0
        assert s.avg_enumeration_ms >= 0
        assert s.num_unsolved == 0
        assert s.avg_candidates is not None

    def test_glasgow_supported(self, setup):
        data, qs = setup
        s = run_algorithm_on_set("GLW", data, qs.queries, time_limit=2.0)
        assert s.num_queries == 4
        assert s.algorithm == "GLW"

    def test_categories_sum(self, setup):
        data, qs = setup
        s = run_algorithm_on_set("RI-opt", data, qs.queries, time_limit=2.0)
        assert sum(s.categories().values()) == s.num_queries

    def test_unsolved_charged_at_limit(self, setup):
        data, qs = setup
        s = run_algorithm_on_set("RI-opt", data, qs.queries, time_limit=2.0)
        # Make one record unsolved artificially and check the charge.
        from repro.study.runner import QueryRecord

        s.records[0] = QueryRecord(
            query_index=0,
            preprocessing_ms=1.0,
            enumeration_ms=123.0,
            num_matches=0,
            solved=False,
            candidate_average=None,
            memory_bytes=0,
            recursion_calls=0,
        )
        assert s.num_unsolved == 1
        assert s.avg_enumeration_ms >= 2000.0 / len(s.records)

    def test_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIME_LIMIT", "7.5")
        monkeypatch.setenv("REPRO_MATCH_CAP", "123")
        assert default_time_limit() == 7.5
        assert default_match_limit() == 123


class TestReporting:
    def test_format_float(self):
        assert format_float(None) == "-"
        assert format_float(0.0) == "0"
        assert format_float(1.5) == "1.50"
        assert format_float(1e7) == "1.00e+07"
        assert format_float(0.0001) == "1.00e-04"

    def test_format_table(self):
        out = format_table(["name", "value"], [["x", 1.0], ["y", 2.5]])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert "2.50" in out

    def test_format_table_title(self):
        out = format_table(["a"], [[1]], title="T1")
        assert out.startswith("T1\n")

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_format_series(self):
        out = format_series(
            "Fig X", [4, 8], {"GQL": [1.0, 2.0], "RI": [None, 3.0]}
        )
        assert "Fig X" in out
        assert "GQL" in out and "RI" in out
        assert "-" in out  # the None cell

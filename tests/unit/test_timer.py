"""Unit tests for Timer and Deadline."""

import math
import time

import pytest

from repro.utils.timer import Deadline, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_elapsed_ms(self):
        with Timer() as t:
            pass
        assert t.elapsed_ms == t.elapsed * 1000.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining == math.inf
        assert d.limit is None

    def test_expires(self):
        d = Deadline(0.01)
        time.sleep(0.02)
        assert d.expired()
        assert d.remaining < 0

    def test_not_yet_expired(self):
        d = Deadline(10.0)
        assert not d.expired()
        assert 0 < d.remaining <= 10.0
        assert d.limit == 10.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

"""Unit tests for Timer and Deadline."""

import math
import time

import pytest

from repro.utils.timer import Deadline, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_elapsed_ms(self):
        with Timer() as t:
            pass
        assert t.elapsed_ms == t.elapsed * 1000.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining == math.inf
        assert d.limit is None

    def test_expires(self):
        d = Deadline(0.01)
        time.sleep(0.02)
        assert d.expired()
        assert d.remaining < 0

    def test_not_yet_expired(self):
        d = Deadline(10.0)
        assert not d.expired()
        assert 0 < d.remaining <= 10.0
        assert d.limit == 10.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_expired_is_sticky(self):
        # Monotonic clock: once over budget, every later poll agrees.
        d = Deadline(0.01)
        time.sleep(0.02)
        assert d.expired()
        assert d.expired()

    def test_remaining_decreases(self):
        d = Deadline(10.0)
        first = d.remaining
        time.sleep(0.01)
        assert d.remaining < first


class TestDeadlineInEngine:
    """The engine's cooperative kill is the paper's unsolved-query path."""

    def test_timer_still_measures_killed_run(self):
        # A Timer wrapping a body that raises through it must still be
        # usable for the next measurement (match() relies on this when
        # BudgetExceeded unwinds into the engine's handler).
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError
        assert t.elapsed >= 0.0
        with t:
            time.sleep(0.005)
        assert t.elapsed > 0.0

    def test_budget_exceeded_is_contained(self):
        from repro.errors import BudgetExceeded
        from repro.core import match
        from repro.graph import extract_query, rmat_graph

        data = rmat_graph(300, 12.0, 1, seed=5, clustering=0.3)
        query = extract_query(data, 10, seed=2)
        try:
            result = match(
                query, data, algorithm="GQL",
                match_limit=None, time_limit=0.02,
            )
        except BudgetExceeded:  # pragma: no cover - the defect under test
            pytest.fail("BudgetExceeded escaped match()")
        assert not result.solved
        assert result.enumeration_seconds > 0.0

"""Unit tests for the embedding verification helper."""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro import explain_embedding_failure, verify_embedding
from repro.graph import Graph


class TestVerify:
    def test_paper_matches_verify(self):
        for embedding in PAPER_MATCHES:
            assert verify_embedding(PAPER_QUERY, PAPER_DATA, embedding)

    def test_mapping_form_accepted(self):
        for embedding in PAPER_MATCHES:
            mapping = dict(enumerate(embedding))
            assert verify_embedding(PAPER_QUERY, PAPER_DATA, mapping)

    def test_non_injective_rejected(self):
        assert not verify_embedding(PAPER_QUERY, PAPER_DATA, (0, 4, 4, 10))
        assert "injective" in explain_embedding_failure(
            PAPER_QUERY, PAPER_DATA, (0, 4, 4, 10)
        )

    def test_label_mismatch_rejected(self):
        # v1 has label C, u1 needs B.
        reason = explain_embedding_failure(PAPER_QUERY, PAPER_DATA, (0, 1, 3, 10))
        assert "label mismatch" in reason

    def test_missing_edge_rejected(self):
        # v2 is not adjacent to v3: query edge (u1, u2) breaks.
        reason = explain_embedding_failure(PAPER_QUERY, PAPER_DATA, (0, 2, 3, 10))
        assert "non-edge" in reason

    def test_out_of_range_vertex(self):
        reason = explain_embedding_failure(PAPER_QUERY, PAPER_DATA, (0, 4, 5, 999))
        assert "nonexistent" in reason

    def test_incomplete_mapping_raises(self):
        with pytest.raises(ValueError, match="every query vertex"):
            verify_embedding(PAPER_QUERY, PAPER_DATA, {0: 0, 1: 4})

    def test_too_short_sequence_raises(self):
        # PAPER_QUERY has 4 vertices; a 3-tuple is not an embedding at all.
        with pytest.raises(ValueError, match="every query vertex"):
            verify_embedding(PAPER_QUERY, PAPER_DATA, (0, 4, 5))

    def test_too_long_sequence_raises(self):
        with pytest.raises(ValueError, match="every query vertex"):
            verify_embedding(PAPER_QUERY, PAPER_DATA, (0, 4, 5, 10, 11))

    def test_mapping_with_foreign_keys_raises(self):
        with pytest.raises(ValueError, match="every query vertex"):
            verify_embedding(
                PAPER_QUERY, PAPER_DATA, {0: 0, 1: 4, 2: 5, 7: 10}
            )

    def test_success_reason_empty(self):
        embedding = next(iter(PAPER_MATCHES))
        assert explain_embedding_failure(PAPER_QUERY, PAPER_DATA, embedding) == ""

    def test_extra_data_edges_allowed(self):
        # Monomorphism semantics: a path embeds into a triangle.
        triangle = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)])
        path = Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2)])
        assert verify_embedding(path, triangle, (0, 1, 2))
